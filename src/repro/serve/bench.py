"""The seeded perf suite behind ``repro bench``.

Records a reproducible performance baseline for the repo (build time,
label size, scalar vs. batched vs. cached query throughput, the online
fallback, a monolithic vs. time-sharded comparison on the largest
dataset, and the flat-kernel vs. object-path serving and cold-open
comparison) and compares two recorded baselines so CI can gate on
regressions (``repro bench --compare BASELINE.json --max-regression 10``).

Protocol
--------

Everything is seeded: the datasets are the deterministic Table II
stand-ins and the serving workload is drawn from a fixed RNG, so two
runs on the same machine measure the same work.  The serving workload
models a query service rather than the paper's Section VI protocol
(which lives in :mod:`repro.workloads`): a small *hot set* of source
vertices fans out to random targets with repetition, which is exactly
the shape the :class:`~repro.serve.QueryEngine` batch path and result
cache are built for.  The scalar baseline answers the identical batch
through :meth:`TILLIndex.span_reachable` one call at a time.

Wall-clock numbers move with the machine; the ``--compare`` gate is
for same-machine trajectories (CI runners, a developer's before/after)
with a tolerance, not for cross-machine comparisons.  Structural
metrics (label entries, estimated bytes) are machine-independent and
deterministic.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.index import TILLIndex
from repro.core.online import online_span_reachable
from repro.datasets import load_dataset
from repro.serve.engine import QueryEngine

SCHEMA = "repro-bench/1"

#: Datasets exercised by the two suite sizes (smallest first).
SMOKE_DATASETS = ("chess", "email-eu")
FULL_DATASETS = ("chess", "email-eu", "enron", "dblp")

#: Throughput-style metrics: a *drop* beyond tolerance is a regression.
HIGHER_IS_BETTER = frozenset({
    "span_scalar_qps",
    "span_batch_qps",
    "span_batch_cached_qps",
    "theta_scalar_qps",
    "theta_batch_qps",
    "online_span_qps",
    "batch_speedup",
    "cached_speedup",
    "cache_hit_rate",
    "min_batch_speedup",
    "mean_cache_hit_rate",
    "parallel_build_speedup",
    "sharded_contained_qps",
    "sharded_straddle_qps",
    "contained_vs_mono_ratio",
    "flat_span_batch_qps",
    "flat_theta_batch_qps",
    "flat_vs_object_speedup",
    "flat_theta_speedup",
    "cold_open_speedup",
    # Vectorized (numpy) batch kernels; absent from documents recorded
    # without numpy, in which case ``compare_results`` skips them.
    "python_span_kernel_qps",
    "python_theta_kernel_qps",
    "numpy_span_kernel_qps",
    "numpy_theta_kernel_qps",
    "numpy_span_kernel_speedup",
    "numpy_theta_kernel_speedup",
    "numpy_span_batch_qps",
    "numpy_theta_batch_qps",
    "numpy_vs_flat_span_speedup",
    "numpy_vs_flat_theta_speedup",
    # Parallel-kernel scenario: chunked batch execution through the
    # ParallelKernelExecutor vs. the same engine with one thread.  The
    # scaling ratio is machine-dependent (informational below ~4
    # cores), so only the absolute throughputs are gated.
    "parallel_span_qps",
    "parallel_theta_qps",
    "sequential_span_qps",
    "sequential_theta_qps",
    "kernel_thread_scaling",
    # Network serving scenario (absent when the platform lacks
    # os.fork/AF_UNIX — ``compare_results`` then skips them).
    "engine_baseline_qps",
    "serve_qps_1w",
    "serve_qps_best",
    "multi_worker_speedup",
})

#: Ratios of two metrics that are each gated on their own.  These are
#: recorded and printed but skipped by :func:`compare_results`: gating a
#: ratio alongside both of its components double-counts any real
#: regression, and — worse — an *improvement* in the denominator (e.g. a
#: faster scalar path) reads as a ratio "regression" even when the
#: numerator is flat.
DERIVED_RATIOS = frozenset({
    "batch_speedup",
    "cached_speedup",
    "min_batch_speedup",
    "parallel_build_speedup",
    "contained_vs_mono_ratio",
    "flat_vs_object_speedup",
    "flat_theta_speedup",
    "cold_open_speedup",
    "numpy_span_kernel_speedup",
    "numpy_theta_kernel_speedup",
    "numpy_vs_flat_span_speedup",
    "numpy_vs_flat_theta_speedup",
    "kernel_thread_scaling",
    "multi_worker_speedup",
})

#: Cost-style metrics: a *rise* beyond tolerance is a regression.
LOWER_IS_BETTER = frozenset({
    "build_seconds",
    "label_entries",
    "estimated_bytes",
    "total_build_seconds",
    "mono_build_seconds",
    "sharded_build_seconds_seq",
    "sharded_build_seconds_parallel",
    "sharded_label_entries",
    "sharded_estimated_bytes",
    "cold_open_mmap_seconds",
    "serve_latency_p50_ms",
    "serve_latency_p95_ms",
    "serve_latency_p99_ms",
    "hot_swap_load_errors",
})


def _timed(fn: Callable[[], Any], repeats: int) -> Tuple[float, Any]:
    """Best-of-*repeats* wall time of ``fn()`` plus its last result.

    Best-of (not mean) because scheduling noise only ever adds time;
    the minimum is the most reproducible estimator for short runs.
    """
    best, _, result = _timed_samples(fn, repeats)
    return best, result


def _timed_samples(
    fn: Callable[[], Any], repeats: int
) -> Tuple[float, List[float], Any]:
    """Like :func:`_timed` but also returns every repeat's wall time,
    so callers can report latency percentiles alongside the best-of."""
    samples: List[float] = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - started)
    return min(samples), samples, result


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/max of *samples* (empty-safe)."""
    ordered = sorted(samples)
    if not ordered:
        return {"p50": 0.0, "p95": 0.0, "max": 0.0}

    def rank(p: float) -> float:
        return ordered[min(len(ordered) - 1,
                           int(round(p * (len(ordered) - 1))))]

    return {"p50": rank(0.5), "p95": rank(0.95), "max": ordered[-1]}


def make_serving_batch(
    graph,
    batch_size: int,
    hot_sources: int,
    target_pool: int,
    seed: int,
) -> List[Tuple[Any, Any]]:
    """A seeded serving-shaped batch: few hot sources, repeated pairs."""
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    sources = vertices[: max(1, min(hot_sources, len(vertices)))]
    pool = vertices[: max(1, min(target_pool, len(vertices)))]
    return [
        (rng.choice(sources), rng.choice(pool)) for _ in range(batch_size)
    ]


def bench_dataset(
    name: str,
    seed: int = 0,
    batch_size: int = 2000,
    hot_sources: int = 12,
    target_pool: int = 60,
    repeats: int = 3,
    online_samples: int = 50,
) -> Dict[str, Any]:
    """Run the full metric set for one dataset; returns a flat dict."""
    graph = load_dataset(name)
    # Best-of-3: single-shot build timings swing ±20% on a loaded or
    # frequency-scaled host, tripping the regression gate on noise.
    build_seconds, index = _timed(lambda: TILLIndex.build(graph), repeats=3)
    index.compact()
    stats = index.stats()
    window = (graph.min_time, graph.max_time)
    theta = max(1, graph.lifetime // 3)
    batch = make_serving_batch(graph, batch_size, hot_sources, target_pool,
                               seed)

    def scalar_span():
        span = index.span_reachable
        return [span(u, v, window) for u, v in batch]

    def scalar_theta():
        reach = index.theta_reachable
        return [reach(u, v, window, theta) for u, v in batch]

    scalar_secs, scalar_answers = _timed(scalar_span, repeats)

    # A separate instrumented pass for per-query latency percentiles;
    # kept out of the timed throughput pass so per-call timer reads
    # don't pollute the qps numbers.
    span = index.span_reachable
    per_query_ms: List[float] = []
    for u, v in batch:
        q_started = time.perf_counter()
        span(u, v, window)
        per_query_ms.append((time.perf_counter() - q_started) * 1000.0)

    # Batch path with the cache disabled: pure amortization
    # (shared validation/prefilters/dedup), no cross-call memoization.
    cold_engine = QueryEngine(index, cache_size=0)
    batch_secs, batch_samples, batch_answers = _timed_samples(
        lambda: cold_engine.span_many(batch, window), repeats
    )
    assert batch_answers == scalar_answers, (
        f"engine/scalar answer mismatch on {name}"
    )

    # Warm-cache path: the same batch served again from the LRU.
    warm_engine = QueryEngine(index, cache_size=4 * batch_size)
    warm_engine.span_many(batch, window)
    warm_engine.reset_stats()
    cached_secs, cached_samples, cached_answers = _timed_samples(
        lambda: warm_engine.span_many(batch, window), repeats
    )
    assert cached_answers == scalar_answers
    hit_rate = warm_engine.stats().hit_rate

    theta_scalar_secs, theta_scalar_answers = _timed(scalar_theta, repeats)
    theta_engine = QueryEngine(index, cache_size=0)
    theta_secs, theta_samples, theta_answers = _timed_samples(
        lambda: theta_engine.theta_many(batch, window, theta), repeats
    )
    assert theta_answers == theta_scalar_answers, (
        f"engine/scalar theta answer mismatch on {name}"
    )

    online_batch = batch[: max(1, online_samples)]
    resolved = [
        (graph.index_of(u), graph.index_of(v)) for u, v in online_batch
    ]
    online_secs, _ = _timed(
        lambda: [
            online_span_reachable(graph, ui, vi, window)
            for ui, vi in resolved
        ],
        repeats,
    )

    qps = lambda secs, n: (n / secs) if secs > 0 else float("inf")
    span_scalar_qps = qps(scalar_secs, len(batch))
    span_batch_qps = qps(batch_secs, len(batch))
    span_cached_qps = qps(cached_secs, len(batch))
    return {
        "num_vertices": stats.num_vertices,
        "num_edges": stats.num_edges,
        "build_seconds": build_seconds,
        "label_entries": stats.total_entries,
        "estimated_bytes": stats.estimated_bytes,
        "compacted": stats.compacted,
        "batch_size": len(batch),
        "theta": theta,
        "span_scalar_qps": span_scalar_qps,
        "span_batch_qps": span_batch_qps,
        "span_batch_cached_qps": span_cached_qps,
        "batch_speedup": span_batch_qps / span_scalar_qps,
        "cached_speedup": span_cached_qps / span_scalar_qps,
        "cache_hit_rate": hit_rate,
        "theta_scalar_qps": qps(theta_scalar_secs, len(batch)),
        "theta_batch_qps": qps(theta_secs, len(batch)),
        "online_span_qps": qps(online_secs, len(online_batch)),
        # Nested latency block (milliseconds).  ``compare_results``
        # only gates on scalar metrics, so old baselines without this
        # key — and new baselines read by old code — both stay valid.
        "latencies": {
            "span_scalar_query_ms": _percentiles(per_query_ms),
            "span_batch_call_ms": _percentiles(
                [s * 1000.0 for s in batch_samples]
            ),
            "span_batch_cached_call_ms": _percentiles(
                [s * 1000.0 for s in cached_samples]
            ),
            "theta_batch_call_ms": _percentiles(
                [s * 1000.0 for s in theta_samples]
            ),
        },
    }


def bench_sharded(
    name: str,
    seed: int = 0,
    batch_size: int = 2000,
    repeats: int = 3,
    num_shards: int = 4,
    jobs: int = 2,
) -> Dict[str, Any]:
    """Monolithic vs. time-sharded comparison on one dataset.

    Measures the three build modes (monolithic, sharded sequential,
    sharded parallel with *jobs* workers) and the serving batch over a
    single-slice window through both backends — the window every query
    of the batch routes ``contained``, so the ratio isolates planner
    overhead — plus a small straddling window through the stitch path.
    Sharded answers are asserted equal to monolithic answers on every
    timed batch.
    """
    from repro.shard import ShardedTILLIndex

    graph = load_dataset(name)
    # Best-of-3 for the same reason as bench_dataset's build timing.
    mono_build, mono = _timed(lambda: TILLIndex.build(graph), 3)
    seq_build, _ = _timed(
        lambda: ShardedTILLIndex.build(graph, num_shards=num_shards, jobs=1),
        3,
    )
    par_build, sharded = _timed(
        lambda: ShardedTILLIndex.build(
            graph, num_shards=num_shards, jobs=jobs
        ),
        3,
    )
    stats = sharded.stats()

    # Contained window: the busiest slice, so the whole batch routes
    # through one shard.
    busiest = max(sharded.partition.slices, key=lambda s: s.num_edges)
    window = (busiest.t_start, busiest.t_end)
    batch = make_serving_batch(graph, batch_size, 12, 60, seed)
    sharded_engine = QueryEngine(sharded, cache_size=0)
    mono_engine = QueryEngine(mono, cache_size=0)
    contained_secs, sharded_answers = _timed(
        lambda: sharded_engine.span_many(batch, window), repeats
    )
    mono_secs, mono_answers = _timed(
        lambda: mono_engine.span_many(batch, window), repeats
    )
    assert sharded_answers == mono_answers, (
        f"sharded/monolithic answer mismatch on {name} {window}"
    )

    # Straddling window: a few timestamps on each side of a middle
    # slice boundary, answered by the contracted stitch.
    boundary = sharded.partition.slices[
        sharded.partition.num_shards // 2 - 1
    ].t_end
    straddle = (boundary - 2, boundary + 3)
    straddle_batch = batch[: max(1, batch_size // 10)]
    straddle_secs, straddle_answers = _timed(
        lambda: sharded_engine.span_many(straddle_batch, straddle), repeats
    )
    assert straddle_answers == mono_engine.span_many(
        straddle_batch, straddle
    ), f"sharded/monolithic straddle mismatch on {name} {straddle}"

    qps = lambda secs, n: (n / secs) if secs > 0 else float("inf")
    contained_qps = qps(contained_secs, len(batch))
    mono_qps = qps(mono_secs, len(batch))
    return {
        "num_shards": stats.num_shards,
        "policy": stats.policy,
        "jobs": jobs,
        "mono_build_seconds": mono_build,
        "sharded_build_seconds_seq": seq_build,
        "sharded_build_seconds_parallel": par_build,
        "parallel_build_speedup": mono_build / par_build,
        "sharded_label_entries": stats.total_entries,
        "sharded_estimated_bytes": stats.estimated_bytes,
        "contained_window": list(window),
        "sharded_contained_qps": contained_qps,
        "mono_window_qps": mono_qps,
        "contained_vs_mono_ratio": contained_qps / mono_qps,
        "straddle_window": list(straddle),
        "sharded_straddle_qps": qps(straddle_secs, len(straddle_batch)),
    }


def bench_flat(
    name: str = "email-eu",
    seed: int = 0,
    batch_size: int = 2000,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Flat-kernel serving vs. the object path, plus cold-open timing.

    Serving: the identical seeded batch through two engines over the
    *same* order and labels — one flattened (batch misses run the
    unchecked flat kernels), one an object-path facade with no flat
    store — so the ratio isolates the kernel rewrite.  Cold open: wall
    time from opening a saved file to the first answered query,
    format-2 eager parse vs. format-3 ``mmap=True``.  Answers are
    asserted equal on every timed pass.

    When numpy is importable, two more comparisons are recorded (they
    are simply absent otherwise, and ``compare_results`` skips them
    against numpy-less baselines): the resolved batch straight through
    the python vs. numpy batch kernels (``*_kernel_qps`` — the pure
    kernel rewrite, no engine overhead), and a third engine over the
    same store with ``backend="auto"`` (``numpy_*_batch_qps`` — the
    end-to-end serving effect).
    """
    import os
    import shutil
    import tempfile

    graph = load_dataset(name)
    index = TILLIndex.build(graph).compact()
    object_index = TILLIndex(
        graph, index.order, index.labels, index.vartheta,
        method=index.method, ordering_name=index.ordering_name,
    )
    assert index.flat is not None and object_index.flat is None

    window = (graph.min_time, graph.max_time)
    theta = max(1, graph.lifetime // 3)
    batch = make_serving_batch(graph, batch_size, 12, 60, seed)

    from repro.core import flatkernels

    kern = flatkernels.select(index.flat, index.order.rank, "auto")
    numpy_index = None
    if kern is not None:
        # A third facade sharing the same order/labels/flat store but
        # with the numpy kernels selected, so the engine ratio
        # isolates the backend switch.
        numpy_index = TILLIndex(
            graph, index.order, index.labels, index.vartheta,
            method=index.method, ordering_name=index.ordering_name,
        )
        numpy_index.flat = index.flat
        numpy_index.flatten(backend="numpy")

    flat_engine = QueryEngine(index, cache_size=0)
    object_engine = QueryEngine(object_index, cache_size=0)
    numpy_engine = (
        QueryEngine(numpy_index, cache_size=0) if kern is not None else None
    )
    # Interleave the flat/object passes (best-of each) so CPU frequency
    # drift and background load hit both configurations alike — the
    # recorded ratio measures the kernels, not the machine's mood.
    flat_secs = object_secs = numpy_secs = float("inf")
    flat_theta_secs = object_theta_secs = numpy_theta_secs = float("inf")
    flat_answers = object_answers = numpy_answers = None
    flat_theta_answers = object_theta_answers = None
    numpy_theta_answers = None
    for _ in range(max(7, repeats)):
        secs, flat_answers = _timed(
            lambda: flat_engine.span_many(batch, window), 1
        )
        flat_secs = min(flat_secs, secs)
        secs, object_answers = _timed(
            lambda: object_engine.span_many(batch, window), 1
        )
        object_secs = min(object_secs, secs)
        secs, flat_theta_answers = _timed(
            lambda: flat_engine.theta_many(batch, window, theta), 1
        )
        flat_theta_secs = min(flat_theta_secs, secs)
        secs, object_theta_answers = _timed(
            lambda: object_engine.theta_many(batch, window, theta), 1
        )
        object_theta_secs = min(object_theta_secs, secs)
        if numpy_engine is not None:
            secs, numpy_answers = _timed(
                lambda: numpy_engine.span_many(batch, window), 1
            )
            numpy_secs = min(numpy_secs, secs)
            secs, numpy_theta_answers = _timed(
                lambda: numpy_engine.theta_many(batch, window, theta), 1
            )
            numpy_theta_secs = min(numpy_theta_secs, secs)
    assert flat_answers == object_answers, (
        f"flat/object span answer mismatch on {name}"
    )
    assert flat_theta_answers == object_theta_answers, (
        f"flat/object theta answer mismatch on {name}"
    )
    if numpy_engine is not None:
        assert numpy_answers == flat_answers, (
            f"numpy/python span answer mismatch on {name}"
        )
        assert numpy_theta_answers == flat_theta_answers, (
            f"numpy/python theta answer mismatch on {name}"
        )

    # Kernel-level comparison: the resolved batch straight through the
    # two batch-kernel implementations — no dedup, no cache, no
    # prefilter — so the ratio is the vectorization itself.
    kernel_metrics: Dict[str, Any] = {}
    if kern is not None:
        from repro.core import queries as _queries

        store, rank = index.flat, index.order.rank
        resolved_pairs = [
            (graph.index_of(u), graph.index_of(v))
            for u, v in batch if u != v
        ]
        ws, we = window
        py_span = py_theta = np_span = np_theta = float("inf")
        py_span_ans = np_span_ans = py_theta_ans = np_theta_ans = None
        for _ in range(max(7, repeats)):
            secs, py_span_ans = _timed(
                lambda: _queries.flat_span_batch(
                    store, rank, resolved_pairs, ws, we
                ), 1,
            )
            py_span = min(py_span, secs)
            secs, np_span_ans = _timed(
                lambda: kern.span_batch(resolved_pairs, ws, we), 1
            )
            np_span = min(np_span, secs)
            secs, py_theta_ans = _timed(
                lambda: _queries.flat_theta_batch(
                    store, rank, resolved_pairs, ws, we, theta
                ), 1,
            )
            py_theta = min(py_theta, secs)
            secs, np_theta_ans = _timed(
                lambda: kern.theta_batch(resolved_pairs, ws, we, theta), 1
            )
            np_theta = min(np_theta, secs)
        assert np_span_ans == py_span_ans, (
            f"numpy/python span kernel mismatch on {name}"
        )
        assert np_theta_ans == py_theta_ans, (
            f"numpy/python theta kernel mismatch on {name}"
        )
        kqps = lambda secs: (
            (len(resolved_pairs) / secs) if secs > 0 else float("inf")
        )
        kernel_metrics = {
            "kernel_batch_size": len(resolved_pairs),
            "python_span_kernel_qps": kqps(py_span),
            "numpy_span_kernel_qps": kqps(np_span),
            "numpy_span_kernel_speedup": py_span / np_span,
            "python_theta_kernel_qps": kqps(py_theta),
            "numpy_theta_kernel_qps": kqps(np_theta),
            "numpy_theta_kernel_speedup": py_theta / np_theta,
        }

    # Cold open: load-to-first-answer.  The eager pass parses every
    # per-vertex label block; the mmap pass maps the flat section and
    # answers off the page cache.
    u0, v0 = batch[0]
    want_first = index.span_reachable(u0, v0, window)
    tmpdir = tempfile.mkdtemp(prefix="bench-flat-")
    try:
        v2_path = os.path.join(tmpdir, f"{name}-v2.till")
        v3_path = os.path.join(tmpdir, f"{name}-v3.till")
        index.save(v2_path, format=2)
        index.save(v3_path, format=3)
        v2_bytes = os.path.getsize(v2_path)
        v3_bytes = os.path.getsize(v3_path)

        def cold_open(path: str, use_mmap: bool):
            loaded = TILLIndex.load(path, graph, mmap=use_mmap)
            return loaded.span_reachable(u0, v0, window)

        eager_secs, eager_answer = _timed(
            lambda: cold_open(v2_path, False), repeats
        )
        mmap_secs, mmap_answer = _timed(
            lambda: cold_open(v3_path, True), repeats
        )
        assert eager_answer == mmap_answer == want_first, (
            f"cold-open answer mismatch on {name}"
        )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    qps = lambda secs, n: (n / secs) if secs > 0 else float("inf")
    flat_qps = qps(flat_secs, len(batch))
    object_qps = qps(object_secs, len(batch))
    flat_theta_qps = qps(flat_theta_secs, len(batch))
    object_theta_qps = qps(object_theta_secs, len(batch))
    results = {
        "dataset": name,
        "batch_size": len(batch),
        "theta": theta,
        "flat_span_batch_qps": flat_qps,
        "object_span_batch_qps": object_qps,
        "flat_vs_object_speedup": flat_qps / object_qps,
        "flat_theta_batch_qps": flat_theta_qps,
        "object_theta_batch_qps": object_theta_qps,
        "flat_theta_speedup": flat_theta_qps / object_theta_qps,
        "cold_open_eager_seconds": eager_secs,
        "cold_open_mmap_seconds": mmap_secs,
        "cold_open_speedup": eager_secs / mmap_secs if mmap_secs > 0
        else float("inf"),
        "file_bytes_v2": v2_bytes,
        "file_bytes_v3": v3_bytes,
    }
    if kern is not None:
        numpy_qps = qps(numpy_secs, len(batch))
        numpy_theta_qps = qps(numpy_theta_secs, len(batch))
        results.update(kernel_metrics)
        results.update({
            "numpy_span_batch_qps": numpy_qps,
            "numpy_theta_batch_qps": numpy_theta_qps,
            "numpy_vs_flat_span_speedup": numpy_qps / flat_qps,
            "numpy_vs_flat_theta_speedup": numpy_theta_qps / flat_theta_qps,
        })
    return results


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[pos]


def bench_parallel(
    name: str = "email-eu",
    seed: int = 0,
    batch_size: int = 2000,
    repeats: int = 3,
    kernel_threads: Optional[int] = None,
) -> Dict[str, Any]:
    """Chunked parallel batch execution vs. the sequential engine.

    One wide seeded batch (enough *unique* miss pairs to clear the
    engine's :data:`~repro.serve.engine.PARALLEL_BATCH_THRESHOLD`)
    runs through engines that differ only in ``kernel_threads``:
    width 1 is the sequential baseline, the sweep (1, 2, 4, 8 —
    truncated to twice the core count, or pinned by
    *kernel_threads*) exercises the run-boundary partition + in-order
    splice.  The same batch also runs the python flat path and (when
    importable) the numpy kernels, so the document relates the
    parallel numbers to the per-backend ladder measured in
    :func:`bench_flat`.  Answers are asserted identical across every
    backend and thread width on every timed pass — the executor's
    contract is bit-equal results, faster.

    ``kernel_thread_scaling`` (best sweep QPS over width-1 QPS) is a
    derived ratio and machine-dependent: below ~4 cores — and always
    on the pure-python backends, which hold the GIL — it hovers near
    or below 1.0 and is informational only.  The gated metrics are the
    absolute ``parallel_*``/``sequential_*`` throughputs.
    """
    import os

    from repro.serve.engine import PARALLEL_BATCH_THRESHOLD

    graph = load_dataset(name)
    index = TILLIndex.build(graph).compact()
    index.flatten(backend="auto")
    backend = index.flat_backend

    # Wide workload: many hot sources over the whole vertex pool so
    # the deduped miss set clears the parallel threshold (the hot-set
    # batches elsewhere in the suite dedup to a few hundred pairs).
    wide = max(4 * batch_size, 6000)
    batch = make_serving_batch(graph, wide, 64, len(list(graph.vertices())),
                               seed)
    unique_pairs = len({(u, v) for u, v in batch if u != v})
    window = (graph.min_time, graph.max_time)
    theta = max(1, graph.lifetime // 3)

    cpu_count = os.cpu_count() or 1
    if kernel_threads is not None:
        sweep = sorted({1, max(1, kernel_threads)})
    else:
        sweep = [n for n in (1, 2, 4, 8) if n == 1 or n <= 2 * cpu_count]
        if len(sweep) == 1:
            sweep.append(2)  # always exercise the partition/splice path

    # A python-flat facade over the same order/labels/store isolates
    # the backend from the engine machinery; numpy likewise when it is
    # importable and not already the resolved backend.
    def facade(flat_backend: str) -> QueryEngine:
        shadow = TILLIndex(
            graph, index.order, index.labels, index.vartheta,
            method=index.method, ordering_name=index.ordering_name,
        )
        shadow.flat = index.flat
        shadow.flatten(backend=flat_backend)
        return QueryEngine(shadow, cache_size=0)

    python_engine = facade("python")
    numpy_engine = None
    from repro.core import flatkernels as _flatkernels

    if _flatkernels._np is not None and backend != "numpy":
        numpy_engine = facade("numpy")
    engines = {
        n: QueryEngine(index, cache_size=0, kernel_threads=n)
        for n in sweep
    }

    # Interleaved best-of passes: every configuration sees the same
    # machine conditions, and every pass re-asserts answer equality.
    passes = max(3, repeats)
    span_times: Dict[int, List[float]] = {n: [] for n in sweep}
    theta_times: Dict[int, List[float]] = {n: [] for n in sweep}
    py_span = py_theta = np_span = np_theta = float("inf")
    want_span = want_theta = None
    try:
        for _ in range(passes):
            for n in sweep:
                secs, answers = _timed(
                    lambda n=n: engines[n].span_many(batch, window), 1
                )
                span_times[n].append(secs)
                if want_span is None:
                    want_span = answers
                assert answers == want_span, (
                    f"span answers diverge at kernel_threads={n} on {name}"
                )
                secs, answers = _timed(
                    lambda n=n: engines[n].theta_many(batch, window, theta), 1
                )
                theta_times[n].append(secs)
                if want_theta is None:
                    want_theta = answers
                assert answers == want_theta, (
                    f"theta answers diverge at kernel_threads={n} on {name}"
                )
            secs, answers = _timed(
                lambda: python_engine.span_many(batch, window), 1
            )
            py_span = min(py_span, secs)
            assert answers == want_span, f"python span mismatch on {name}"
            secs, answers = _timed(
                lambda: python_engine.theta_many(batch, window, theta), 1
            )
            py_theta = min(py_theta, secs)
            assert answers == want_theta, f"python theta mismatch on {name}"
            if numpy_engine is not None:
                secs, answers = _timed(
                    lambda: numpy_engine.span_many(batch, window), 1
                )
                np_span = min(np_span, secs)
                assert answers == want_span, f"numpy span mismatch on {name}"
                secs, answers = _timed(
                    lambda: numpy_engine.theta_many(batch, window, theta), 1
                )
                np_theta = min(np_theta, secs)
                assert answers == want_theta, (
                    f"numpy theta mismatch on {name}"
                )
    finally:
        for engine in engines.values():
            engine.close()

    qps = lambda secs, n=len(batch): (n / secs) if secs > 0 else float("inf")
    thread_sweep: Dict[str, Dict[str, float]] = {}
    for n in sweep:
        span_sorted = sorted(span_times[n])
        theta_sorted = sorted(theta_times[n])
        thread_sweep[str(n)] = {
            "span_qps": qps(span_sorted[0]),
            "theta_qps": qps(theta_sorted[0]),
            "span_p50_ms": _percentile(span_sorted, 0.50) * 1000.0,
            "span_p95_ms": _percentile(span_sorted, 0.95) * 1000.0,
            "theta_p50_ms": _percentile(theta_sorted, 0.50) * 1000.0,
            "theta_p95_ms": _percentile(theta_sorted, 0.95) * 1000.0,
        }
    sequential_span_qps = thread_sweep["1"]["span_qps"]
    sequential_theta_qps = thread_sweep["1"]["theta_qps"]
    parallel_span_qps = max(m["span_qps"] for m in thread_sweep.values())
    parallel_theta_qps = max(m["theta_qps"] for m in thread_sweep.values())
    results = {
        "dataset": name,
        "backend": backend,
        "cpu_count": cpu_count,
        "batch_size": len(batch),
        "unique_pairs": unique_pairs,
        "parallel_threshold": PARALLEL_BATCH_THRESHOLD,
        "theta": theta,
        "thread_sweep": thread_sweep,
        "sequential_span_qps": sequential_span_qps,
        "sequential_theta_qps": sequential_theta_qps,
        "parallel_span_qps": parallel_span_qps,
        "parallel_theta_qps": parallel_theta_qps,
        "kernel_thread_scaling": parallel_span_qps / sequential_span_qps,
        "python_flat_span_qps": qps(py_span),
        "python_flat_theta_qps": qps(py_theta),
    }
    if numpy_engine is not None:
        results["numpy_span_qps"] = qps(np_span)
        results["numpy_theta_qps"] = qps(np_theta)
    return results


def bench_overhead(
    name: str = "chess",
    seed: int = 0,
    batch_size: int = 2000,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Instrumentation-overhead scenario: telemetry on vs. off.

    Runs the two hot paths the telemetry wiring touches — index
    construction (per-root tracer batches + work counters) and the
    engine's serving batch (per-batch histograms + outcome counters) —
    once with ``telemetry=None`` and once with a live
    :class:`repro.obs.Telemetry`, and reports the relative slowdown.
    The design target is < 5%; best-of timing filters scheduler noise,
    but on sub-second runs small negative values are normal jitter.
    """
    from repro.obs import Telemetry

    graph = load_dataset(name)
    obs_telemetry = Telemetry()
    # Interleave the plain/instrumented passes (best-of each) so CPU
    # frequency drift and background load hit both configurations
    # alike — back-to-back blocks record the machine, not the code.
    build_plain = build_obs = float("inf")
    index = None
    for _ in range(min(2, max(1, repeats))):
        build_plain, index = min(
            (build_plain, index),
            _timed(lambda: TILLIndex.build(graph), 1),
            key=lambda pair: pair[0],
        )
        build_obs = min(
            build_obs,
            _timed(
                lambda: TILLIndex.build(graph, telemetry=obs_telemetry), 1
            )[0],
        )

    index.compact()
    window = (graph.min_time, graph.max_time)
    batch = make_serving_batch(graph, batch_size, 12, 60, seed)
    plain_engine = QueryEngine(index, cache_size=0)
    obs_engine = QueryEngine(index, cache_size=0, telemetry=obs_telemetry)
    # The serve passes are a few ms each; extra repeats are nearly
    # free and keep the recorded percentage out of the noise floor.
    plain_secs = obs_secs = float("inf")
    plain_answers = obs_answers = None
    for _ in range(max(repeats, 5)):
        secs, plain_answers = _timed(
            lambda: plain_engine.span_many(batch, window), 1
        )
        plain_secs = min(plain_secs, secs)
        secs, obs_answers = _timed(
            lambda: obs_engine.span_many(batch, window), 1
        )
        obs_secs = min(obs_secs, secs)
    assert obs_answers == plain_answers, (
        f"telemetry changed answers on {name}"
    )

    overhead = lambda base, now: (
        (now - base) / base * 100.0 if base > 0 else 0.0
    )
    qps = lambda secs, n: (n / secs) if secs > 0 else float("inf")
    return {
        "dataset": name,
        "batch_size": len(batch),
        "build_plain_seconds": build_plain,
        "build_telemetry_seconds": build_obs,
        "build_overhead_pct": overhead(build_plain, build_obs),
        "serve_plain_qps": qps(plain_secs, len(batch)),
        "serve_telemetry_qps": qps(obs_secs, len(batch)),
        "serve_overhead_pct": overhead(plain_secs, obs_secs),
    }


def bench_serving(
    name: str = "chess",
    seed: int = 0,
    queries: int = 1200,
    concurrency: int = 4,
    pipeline: int = 8,
    worker_counts: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """Network-serving scenario: concurrent QPS and latency percentiles
    vs. worker count, against the in-process single-engine baseline.

    Boots a real pre-fork server pool on a scratch Unix socket (every
    worker mmapping the same format-3 file), drives it with the load
    generator, and measures:

    * ``engine_baseline_qps`` — the identical workload pushed through
      one in-process :class:`QueryEngine` (no network, no JSON): the
      ceiling the serving tier is amortizing toward;
    * ``serve_qps_{N}w`` — pipelined concurrent throughput per worker
      count, plus p50/p95/p99 per-query latency (``pipeline=1``);
    * ``hot_swap_load_errors`` — failed queries while an index hot
      swap lands mid-traffic (the acceptance target is **zero**);
    * ``multi_worker_speedup`` — best multi-worker QPS over one
      worker.  On a multi-core host (>= 4 cores) the expectation is
      >= 2x; ``cpu_count`` is recorded so single-core CI runs are
      interpretable rather than failures.

    Returns ``{"skipped": reason}`` where ``os.fork``/Unix sockets are
    unavailable; ``compare_results`` skips absent metrics.
    """
    import os
    import signal as signal_module
    import socket
    import tempfile
    import threading

    if not hasattr(os, "fork") or not hasattr(socket, "AF_UNIX"):
        return {"skipped": "needs os.fork and AF_UNIX sockets"}

    from repro.serve.client import run_loadgen
    from repro.serve.server import (
        IndexProvider,
        ServerConfig,
        bind_socket,
        serve_prefork,
    )
    from repro.serve.smoke import make_queries, wait_for_server

    cpu_count = os.cpu_count() or 1
    if worker_counts is None:
        worker_counts = sorted({1, min(4, max(2, cpu_count))})
    graph = load_dataset(name)
    workload = make_queries(graph, queries, seed=seed + 8)
    window = (graph.min_time, graph.max_time)
    theta = max(1, graph.lifetime // 3)

    metrics: Dict[str, Any] = {
        "dataset": name,
        "queries": len(workload),
        "concurrency": concurrency,
        "pipeline": pipeline,
        "cpu_count": cpu_count,
        "worker_counts": list(worker_counts),
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as scratch:
        index_path = os.path.join(scratch, "bench.till")
        index = TILLIndex.build(graph).compact()
        index.save(index_path, format=3)

        # In-process ceiling: the same mixed workload through one
        # engine, coalesced exactly as the server's batcher would.
        engine = QueryEngine(index)
        span_pairs = [(u, v) for (u, v, _t1, _t2, th) in workload
                      if th is None]
        theta_pairs = [(u, v) for (u, v, _t1, _t2, th) in workload
                       if th is not None]
        engine_seconds, _ = _timed(
            lambda: (
                engine.span_many(span_pairs, window),
                engine.theta_many(theta_pairs, window, theta),
            ),
            repeats=3,
        )
        metrics["engine_baseline_qps"] = (
            len(workload) / engine_seconds if engine_seconds > 0 else 0.0
        )

        provider = IndexProvider(graph, index_path, mmap=True)
        config = ServerConfig(max_batch=256, batch_delay=0.001)
        best_qps = 0.0
        for workers in worker_counts:
            socket_path = os.path.join(scratch, f"serve-{workers}.sock")
            sock = bind_socket(socket_path=socket_path)
            pool_pid = os.fork()
            if pool_pid == 0:
                status = 1
                try:
                    status = serve_prefork(provider, config, sock, workers)
                finally:
                    os._exit(status)
            sock.close()
            try:
                wait_for_server(socket_path)
                run_loadgen(workload[:200], socket_path=socket_path,
                            concurrency=concurrency,
                            pipeline=pipeline)  # warm page cache + caches
                throughput = run_loadgen(
                    workload, socket_path=socket_path,
                    concurrency=concurrency, pipeline=pipeline,
                )
                latency = run_loadgen(
                    workload[: max(200, len(workload) // 4)],
                    socket_path=socket_path, concurrency=1, pipeline=1,
                )
                # One hot swap landing mid-traffic; the acceptance
                # criterion is zero failed in-flight queries.
                swap_failed = []

                def swapper():
                    from repro.serve.client import ServeClient

                    try:
                        with ServeClient(socket_path=socket_path) as c:
                            if not c.reload().get("ok"):
                                swap_failed.append("reload not ok")
                    except Exception as exc:
                        swap_failed.append(repr(exc))

                swap_thread = threading.Thread(target=swapper)
                swap_thread.start()
                under_swap = run_loadgen(
                    workload, socket_path=socket_path,
                    concurrency=concurrency, pipeline=pipeline,
                )
                swap_thread.join(30)
            finally:
                try:
                    os.kill(pool_pid, signal_module.SIGTERM)
                except ProcessLookupError:
                    pass
                os.waitpid(pool_pid, 0)
            qps = throughput["qps"]
            best_qps = max(best_qps, qps)
            metrics[f"serve_qps_{workers}w"] = qps
            metrics[f"serve_errors_{workers}w"] = (
                throughput["errors"] + len(throughput["failures"])
            )
            if workers == worker_counts[-1]:
                metrics["serve_latency_p50_ms"] = latency["latency_p50_ms"]
                metrics["serve_latency_p95_ms"] = latency["latency_p95_ms"]
                metrics["serve_latency_p99_ms"] = latency["latency_p99_ms"]
            metrics[f"hot_swap_errors_{workers}w"] = (
                under_swap["errors"] + len(under_swap["failures"])
                + len(swap_failed)
            )
        # Fleet-observability pass: the same ladder top rerun with the
        # spool reporter, trace streaming and slow-query log armed.
        # ``fleet_overhead_pct`` is informational (the gated <5% bound
        # is ``telemetry_overhead``'s in-process measurement; a forked
        # network run is too noisy to gate), and the SLO estimates come
        # from the fleet-aggregated ``server_request_seconds`` — the
        # numbers ``repro slo`` would compute against this document.
        workers = worker_counts[-1]
        socket_path = os.path.join(scratch, "serve-obs.sock")
        sock = bind_socket(socket_path=socket_path)
        obs_config = ServerConfig(
            max_batch=256, batch_delay=0.001,
            obs_dir=os.path.join(scratch, "obs"),
            metrics_interval=0.5,
            slow_query_ms=50.0,
        )
        pool_pid = os.fork()
        if pool_pid == 0:
            status = 1
            try:
                status = serve_prefork(provider, obs_config, sock, workers)
            finally:
                os._exit(status)
        sock.close()
        fleet_doc = None
        try:
            wait_for_server(socket_path)
            run_loadgen(workload[:200], socket_path=socket_path,
                        concurrency=concurrency, pipeline=pipeline)
            obs_run = run_loadgen(
                workload, socket_path=socket_path,
                concurrency=concurrency, pipeline=pipeline,
                trace_every=8,
            )
            from repro.serve.client import ServeClient

            with ServeClient(socket_path=socket_path) as client:
                response = client.metrics()
            if response.get("ok"):
                fleet_doc = response["result"]
        finally:
            try:
                os.kill(pool_pid, signal_module.SIGTERM)
            except ProcessLookupError:
                pass
            os.waitpid(pool_pid, 0)
        metrics["serve_qps_obs"] = obs_run["qps"]
        plain_qps = metrics.get(f"serve_qps_{workers}w") or 0.0
        if plain_qps > 0:
            metrics["fleet_overhead_pct"] = (
                (plain_qps - obs_run["qps"]) / plain_qps * 100.0
            )
        if fleet_doc is not None:
            from repro.obs.slowlog import extract_latency_quantiles

            quantiles = extract_latency_quantiles(fleet_doc)
            metrics["fleet_workers_seen"] = len(
                (fleet_doc.get("fleet") or {}).get("workers") or []
            )
            for key in ("p50", "p95", "p99"):
                if quantiles.get(key) is not None:
                    metrics[f"slo_estimate_{key}_ms"] = (
                        quantiles[key] * 1000.0
                    )
    metrics["serve_qps_best"] = best_qps
    metrics["hot_swap_load_errors"] = sum(
        metrics[f"hot_swap_errors_{w}w"] for w in worker_counts
    )
    if metrics.get("serve_qps_1w"):
        metrics["multi_worker_speedup"] = best_qps / metrics["serve_qps_1w"]
    return metrics


def run_suite(
    smoke: bool = True,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    label: str = "PR10",
    batch_size: int = 2000,
    repeats: int = 3,
    telemetry=None,
    kernel_threads: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the micro+macro suite and return the results document.

    The largest (last) dataset additionally runs the monolithic vs.
    sharded comparison (:func:`bench_sharded`), recorded under the
    top-level ``"sharded"`` key, and the flat-vs-object serving and
    cold-open comparison (:func:`bench_flat`) under ``"flat"``; the
    smallest (first) runs the telemetry-overhead scenario
    (:func:`bench_overhead`) under ``"telemetry_overhead"``, and the
    parallel-kernel scenario (:func:`bench_parallel`, thread sweep
    pinned by *kernel_threads* when given) under ``"parallel"``.
    ``telemetry`` (a
    :class:`repro.obs.Telemetry`) traces the suite itself — one span
    per stage plus ``bench_stage_seconds`` gauges; the timed scenarios
    construct their own engines, so suite-level telemetry never sits
    on a measured path.
    """
    names = list(datasets) if datasets else list(
        SMOKE_DATASETS if smoke else FULL_DATASETS
    )
    stage_gauge = (
        telemetry.metrics.gauge(
            "bench_stage_seconds", "Wall time of one bench suite stage"
        )
        if telemetry is not None else None
    )

    def staged(stage: str, fn):
        if telemetry is None:
            return fn()
        started = time.perf_counter()
        with telemetry.tracer.span("bench.stage", stage=stage):
            result = fn()
        stage_gauge.set(time.perf_counter() - started, stage=stage)
        return result

    per_dataset: Dict[str, Dict[str, Any]] = {}
    for name in names:
        per_dataset[name] = staged(
            f"dataset:{name}",
            lambda name=name: bench_dataset(
                name, seed=seed, batch_size=batch_size, repeats=repeats
            ),
        )
    sharded = staged(
        f"sharded:{names[-1]}",
        lambda: bench_sharded(
            names[-1], seed=seed, batch_size=batch_size, repeats=repeats
        ),
    )
    flat = staged(
        f"flat:{names[-1]}",
        lambda: bench_flat(
            names[-1], seed=seed, batch_size=batch_size, repeats=repeats
        ),
    )
    parallel = staged(
        f"parallel:{names[-1]}",
        lambda: bench_parallel(
            names[-1], seed=seed, batch_size=batch_size, repeats=repeats,
            kernel_threads=kernel_threads,
        ),
    )
    overhead = staged(
        f"overhead:{names[0]}",
        lambda: bench_overhead(
            names[0], seed=seed, batch_size=batch_size, repeats=repeats
        ),
    )
    serving = staged(
        f"serving:{names[0]}",
        lambda: bench_serving(names[0], seed=seed),
    )
    speedups = [m["batch_speedup"] for m in per_dataset.values()]
    hit_rates = [m["cache_hit_rate"] for m in per_dataset.values()]
    summary = {
        "min_batch_speedup": min(speedups),
        "mean_cache_hit_rate": sum(hit_rates) / len(hit_rates),
        "total_build_seconds": sum(
            m["build_seconds"] for m in per_dataset.values()
        ),
        "parallel_build_speedup": sharded["parallel_build_speedup"],
        "telemetry_serve_overhead_pct": overhead["serve_overhead_pct"],
        "flat_vs_object_speedup": flat["flat_vs_object_speedup"],
        "cold_open_speedup": flat["cold_open_speedup"],
        "parallel_span_qps": parallel["parallel_span_qps"],
        "kernel_thread_scaling": parallel["kernel_thread_scaling"],
    }
    if "numpy_span_kernel_speedup" in flat:
        summary["numpy_span_kernel_speedup"] = (
            flat["numpy_span_kernel_speedup"]
        )
        summary["numpy_theta_kernel_speedup"] = (
            flat["numpy_theta_kernel_speedup"]
        )
    if "serve_qps_best" in serving:
        summary["serve_qps_best"] = serving["serve_qps_best"]
        summary["hot_swap_load_errors"] = serving["hot_swap_load_errors"]
        if "multi_worker_speedup" in serving:
            summary["multi_worker_speedup"] = (
                serving["multi_worker_speedup"]
            )
    return {
        "schema": SCHEMA,
        "label": label,
        "suite": "smoke" if smoke else "full",
        "seed": seed,
        "config": {
            "datasets": names,
            "batch_size": batch_size,
            "repeats": repeats,
        },
        "datasets": per_dataset,
        "sharded": {"dataset": names[-1], **sharded},
        "flat": flat,
        "parallel": parallel,
        "telemetry_overhead": overhead,
        "serving": serving,
        "summary": summary,
    }


def compare_results(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression_pct: float,
) -> List[str]:
    """Regression report between two results documents.

    Every metric present in *both* documents (per dataset, plus the
    summary block) with a known direction is compared; a change past
    ``max_regression_pct`` in the bad direction produces one line.
    Derived ratios (:data:`DERIVED_RATIOS`) are informational only —
    their components are gated individually.  Returns an empty list
    when the current run is within tolerance.
    """
    problems: List[str] = []

    def check(scope: str, metrics_now: Dict, metrics_base: Dict) -> None:
        for key, base_value in metrics_base.items():
            if key not in metrics_now:
                continue
            if key in DERIVED_RATIOS:
                continue
            now_value = metrics_now[key]
            if not isinstance(base_value, (int, float)) or isinstance(
                base_value, bool
            ):
                continue
            if base_value == 0:
                continue
            if key in HIGHER_IS_BETTER:
                change_pct = (base_value - now_value) / base_value * 100.0
            elif key in LOWER_IS_BETTER:
                change_pct = (now_value - base_value) / base_value * 100.0
            else:
                continue
            if change_pct > max_regression_pct:
                problems.append(
                    f"{scope}: {key} regressed {change_pct:.1f}% "
                    f"(baseline {base_value:.6g} -> current {now_value:.6g}, "
                    f"tolerance {max_regression_pct:g}%)"
                )

    base_datasets = baseline.get("datasets", {})
    now_datasets = current.get("datasets", {})
    for name, base_metrics in base_datasets.items():
        if name in now_datasets:
            check(name, now_datasets[name], base_metrics)
    check("sharded", current.get("sharded", {}), baseline.get("sharded", {}))
    check("flat", current.get("flat", {}), baseline.get("flat", {}))
    check("parallel", current.get("parallel", {}),
          baseline.get("parallel", {}))
    check("serving", current.get("serving", {}),
          baseline.get("serving", {}))
    check("summary", current.get("summary", {}), baseline.get("summary", {}))
    return problems


def format_results(results: Dict[str, Any]) -> str:
    """Human-readable rendering of one results document."""
    lines = [
        f"bench suite={results['suite']} seed={results['seed']} "
        f"label={results['label']}"
    ]
    for name, m in results["datasets"].items():
        lines.append(
            f"  {name}: build {m['build_seconds']:.2f}s, "
            f"{m['label_entries']} entries, "
            f"scalar {m['span_scalar_qps']:.0f} q/s, "
            f"batch {m['span_batch_qps']:.0f} q/s "
            f"({m['batch_speedup']:.2f}x), "
            f"cached {m['span_batch_cached_qps']:.0f} q/s "
            f"({m['cached_speedup']:.2f}x, hit rate "
            f"{m['cache_hit_rate']:.0%}), "
            f"theta batch {m['theta_batch_qps']:.0f} q/s, "
            f"online {m['online_span_qps']:.0f} q/s"
        )
    sharded = results.get("sharded")
    if sharded:
        lines.append(
            f"  sharded[{sharded['dataset']}]: mono build "
            f"{sharded['mono_build_seconds']:.2f}s vs "
            f"{sharded['num_shards']} shards seq "
            f"{sharded['sharded_build_seconds_seq']:.2f}s / "
            f"jobs={sharded['jobs']} "
            f"{sharded['sharded_build_seconds_parallel']:.2f}s "
            f"({sharded['parallel_build_speedup']:.2f}x), "
            f"contained {sharded['sharded_contained_qps']:.0f} q/s "
            f"({sharded['contained_vs_mono_ratio']:.2f}x of mono), "
            f"straddle {sharded['sharded_straddle_qps']:.0f} q/s"
        )
    flat = results.get("flat")
    if flat:
        lines.append(
            f"  flat[{flat['dataset']}]: span batch "
            f"{flat['flat_span_batch_qps']:.0f} q/s "
            f"({flat['flat_vs_object_speedup']:.2f}x of object "
            f"{flat['object_span_batch_qps']:.0f} q/s), "
            f"theta batch {flat['flat_theta_batch_qps']:.0f} q/s "
            f"({flat['flat_theta_speedup']:.2f}x), "
            f"cold open {flat['cold_open_mmap_seconds'] * 1000.0:.1f}ms "
            f"mmap vs {flat['cold_open_eager_seconds'] * 1000.0:.1f}ms "
            f"eager ({flat['cold_open_speedup']:.1f}x)"
        )
    if flat and "numpy_span_kernel_qps" in flat:
        lines.append(
            f"  numpy[{flat['dataset']}]: span kernel "
            f"{flat['numpy_span_kernel_qps']:.0f} q/s "
            f"({flat['numpy_span_kernel_speedup']:.2f}x of python "
            f"{flat['python_span_kernel_qps']:.0f} q/s), "
            f"theta kernel {flat['numpy_theta_kernel_qps']:.0f} q/s "
            f"({flat['numpy_theta_kernel_speedup']:.2f}x), "
            f"serving span {flat['numpy_span_batch_qps']:.0f} q/s "
            f"({flat['numpy_vs_flat_span_speedup']:.2f}x of python flat)"
        )
    parallel = results.get("parallel")
    if parallel:
        widths = ", ".join(
            f"{n}t {m['span_qps']:.0f} q/s "
            f"(p50 {m['span_p50_ms']:.1f}ms)"
            for n, m in sorted(
                parallel["thread_sweep"].items(), key=lambda kv: int(kv[0])
            )
        )
        lines.append(
            f"  parallel[{parallel['dataset']}]: backend "
            f"{parallel['backend']}, {parallel['unique_pairs']} unique "
            f"pairs, {widths}; best "
            f"{parallel['parallel_span_qps']:.0f} q/s span / "
            f"{parallel['parallel_theta_qps']:.0f} q/s theta "
            f"({parallel['kernel_thread_scaling']:.2f}x of 1t, "
            f"{parallel['cpu_count']} core(s))"
        )
    serving = results.get("serving")
    if serving and "serve_qps_best" in serving:
        per_worker = ", ".join(
            f"{w}w {serving[f'serve_qps_{w}w']:.0f} q/s"
            for w in serving["worker_counts"]
        )
        speedup = serving.get("multi_worker_speedup")
        lines.append(
            f"  serving[{serving['dataset']}]: {per_worker} "
            f"(engine ceiling {serving['engine_baseline_qps']:.0f} q/s, "
            f"{serving['cpu_count']} core(s)"
            + (f", {speedup:.2f}x multi-worker" if speedup else "")
            + f"), p50/p95/p99 {serving['serve_latency_p50_ms']:.2f}/"
            f"{serving['serve_latency_p95_ms']:.2f}/"
            f"{serving['serve_latency_p99_ms']:.2f} ms, "
            f"hot-swap errors {serving['hot_swap_load_errors']}"
        )
        if "serve_qps_obs" in serving:
            fleet_line = (
                f"  fleet[{serving['dataset']}]: "
                f"{serving['serve_qps_obs']:.0f} q/s with fleet obs on"
            )
            if "fleet_overhead_pct" in serving:
                fleet_line += (
                    f" ({serving['fleet_overhead_pct']:+.1f}% vs plain)"
                )
            if "slo_estimate_p95_ms" in serving:
                fleet_line += (
                    f", fleet p95/p99 "
                    f"{serving['slo_estimate_p95_ms']:.2f}/"
                    f"{serving.get('slo_estimate_p99_ms', 0.0):.2f} ms "
                    f"from {serving.get('fleet_workers_seen', 0)} "
                    "worker snapshot(s)"
                )
            lines.append(fleet_line)
    elif serving and "skipped" in serving:
        lines.append(f"  serving: skipped ({serving['skipped']})")
    overhead = results.get("telemetry_overhead")
    if overhead:
        lines.append(
            f"  telemetry[{overhead['dataset']}]: build "
            f"{overhead['build_overhead_pct']:+.1f}%, serve "
            f"{overhead['serve_overhead_pct']:+.1f}% "
            f"({overhead['serve_plain_qps']:.0f} -> "
            f"{overhead['serve_telemetry_qps']:.0f} q/s with telemetry)"
        )
    summary = results["summary"]
    lines.append(
        f"  summary: min batch speedup {summary['min_batch_speedup']:.2f}x, "
        f"mean hit rate {summary['mean_cache_hit_rate']:.0%}, "
        f"total build {summary['total_build_seconds']:.2f}s"
    )
    return "\n".join(lines)


def write_results(results: Dict[str, Any], path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_results(path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
