"""End-to-end serving smoke: ``python -m repro.serve.smoke``.

The ``make serve-smoke`` entry point.  In one process tree it:

1. builds a small dataset's index and saves it as a format-3 ``.till``
   in a scratch directory,
2. forks a pre-fork server pool accepting on a Unix socket (every
   worker mmaps the same file),
3. drives a few hundred pipelined span/theta queries through the load
   generator,
4. triggers an index hot swap mid-traffic (both via the ``reload`` op
   and via ``SIGHUP`` to the whole pool) and drives a second wave,
5. asserts **zero** failed queries, then SIGTERMs the pool and asserts
   a clean exit.

Exit status 0 means the serving tier works on this machine; anything
else prints the failure and exits 1.  No state is left behind — the
index, socket, and metrics all live in a ``tempfile`` scratch dir.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import time

from repro.core.index import TILLIndex
from repro.datasets import load_dataset
from repro.serve.client import ServeClient, run_loadgen
from repro.serve.server import (
    IndexProvider,
    ServerConfig,
    bind_socket,
    serve_prefork,
)


def wait_for_server(socket_path: str, timeout: float = 15.0) -> None:
    """Block until the server answers a ping (or raise on timeout)."""
    deadline = time.monotonic() + timeout
    last: Exception = RuntimeError("server never came up")
    while time.monotonic() < deadline:
        try:
            with ServeClient(socket_path=socket_path, timeout=2.0) as client:
                response = client.ping()
            if response.get("ok"):
                return
        except (OSError, ConnectionError) as exc:
            last = exc
        time.sleep(0.05)
    raise TimeoutError(f"server on {socket_path} not ready: {last}")


def make_queries(graph, count: int, seed: int = 8):
    """A mixed span/theta workload over real vertices of *graph*."""
    import random

    rng = random.Random(seed)
    vertices = list(graph.vertices())
    t1, t2 = graph.min_time, graph.max_time
    theta = max(1, graph.lifetime // 3)
    queries = []
    for i in range(count):
        u, v = rng.choice(vertices), rng.choice(vertices)
        if i % 3 == 2:
            queries.append((u, v, t1, t2, theta))
        else:
            queries.append((u, v, t1, t2, None))
    return queries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="end-to-end smoke test of the network serving tier",
    )
    parser.add_argument("--dataset", default="chess")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--pipeline", type=int, default=8)
    args = parser.parse_args(argv)

    if not hasattr(os, "fork"):
        print("serve-smoke: skipped (no os.fork on this platform)")
        return 0

    graph = load_dataset(args.dataset)
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as scratch:
        index_path = os.path.join(scratch, "smoke.till")
        TILLIndex.build(graph).compact().save(index_path, format=3)
        socket_path = os.path.join(scratch, "serve.sock")
        sock = bind_socket(socket_path=socket_path)
        provider = IndexProvider(graph, index_path, mmap=True)
        config = ServerConfig(max_batch=64, batch_delay=0.002)

        pool_pid = os.fork()
        if pool_pid == 0:  # pool supervisor process
            status = 1
            try:
                status = serve_prefork(provider, config, sock, args.workers)
            finally:
                os._exit(status)
        sock.close()  # driver keeps only the client side

        try:
            wait_for_server(socket_path)
            print(f"serve-smoke: pool up ({args.workers} worker(s), "
                  f"pid {pool_pid}) on {socket_path}")
            queries = make_queries(graph, args.queries)

            wave1 = run_loadgen(
                queries, socket_path=socket_path,
                concurrency=args.concurrency, pipeline=args.pipeline,
            )
            if wave1["errors"] or wave1["failures"]:
                failures.append(f"wave 1 had failures: {wave1}")
            print(f"serve-smoke: wave 1 ok={wave1['ok']} "
                  f"qps={wave1['qps']:.0f} "
                  f"p95={wave1['latency_p95_ms']:.2f}ms")

            # Hot swap both ways: the wire op (one worker) and SIGHUP
            # (every worker), then prove traffic still flows cleanly.
            with ServeClient(socket_path=socket_path) as client:
                reloaded = client.reload()
                if not reloaded.get("ok"):
                    failures.append(f"reload op failed: {reloaded}")
            os.kill(pool_pid, signal.SIGHUP)
            time.sleep(0.2)

            wave2 = run_loadgen(
                queries, socket_path=socket_path,
                concurrency=args.concurrency, pipeline=args.pipeline,
            )
            if wave2["errors"] or wave2["failures"]:
                failures.append(f"post-swap wave had failures: {wave2}")
            print(f"serve-smoke: post-swap wave ok={wave2['ok']} "
                  f"qps={wave2['qps']:.0f}")

            with ServeClient(socket_path=socket_path) as client:
                stats = client.stats()
            if not stats.get("ok"):
                failures.append(f"stats op failed: {stats}")
        except Exception as exc:
            failures.append(f"smoke driver crashed: {exc!r}")
        finally:
            try:
                os.kill(pool_pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            _, status = os.waitpid(pool_pid, 0)
            exit_code = os.waitstatus_to_exitcode(status)
            if exit_code != 0:
                failures.append(
                    f"pool did not shut down cleanly (exit {exit_code})"
                )

    if failures:
        for failure in failures:
            print(f"serve-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve-smoke: OK (zero errors, clean shutdown)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
