"""End-to-end serving smoke: ``python -m repro.serve.smoke``.

The ``make serve-smoke`` entry point.  In one process tree it:

1. builds a small dataset's index and saves it as a format-3 ``.till``
   in a scratch directory,
2. forks a pre-fork server pool accepting on a Unix socket (every
   worker mmaps the same file) with fleet observability on: a metrics
   spool, per-worker trace streams, and a slow-query log,
3. drives a few hundred pipelined span/theta queries through the load
   generator (the second wave stamps every request with a trace id),
4. triggers an index hot swap mid-traffic (both via the ``reload`` op
   and via ``SIGHUP`` to the whole pool) and drives a second wave,
5. asserts the ``metrics`` wire op (answered by whichever worker
   accepts) aggregates ``server_requests_total`` across **all**
   workers to exactly the client-side total,
6. asserts **zero** failed queries, then SIGTERMs the pool, asserts a
   clean exit, and writes the fleet artifacts: the merged metrics
   document and the merged cross-process trace — after checking that
   at least one request reassembles across all three layers (server
   request span → batch span linking >= 2 trace ids → engine span).

Exit status 0 means the serving tier works on this machine; anything
else prints the failure and exits 1.  Only the two fleet artifacts
(default: under ``.scratch/``) outlive the run — the index, socket,
and spool live in a ``tempfile`` scratch dir.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import time

from repro.core.index import TILLIndex
from repro.datasets import load_dataset
from repro.serve.client import ServeClient, run_loadgen
from repro.serve.server import (
    IndexProvider,
    ServerConfig,
    bind_socket,
    serve_prefork,
)


def wait_for_server(socket_path: str, timeout: float = 15.0) -> None:
    """Block until the server answers a ping (or raise on timeout)."""
    deadline = time.monotonic() + timeout
    last: Exception = RuntimeError("server never came up")
    while time.monotonic() < deadline:
        try:
            with ServeClient(socket_path=socket_path, timeout=2.0) as client:
                response = client.ping()
            if response.get("ok"):
                return
        except (OSError, ConnectionError) as exc:
            last = exc
        time.sleep(0.05)
    raise TimeoutError(f"server on {socket_path} not ready: {last}")


def make_queries(graph, count: int, seed: int = 8):
    """A mixed span/theta workload over real vertices of *graph*."""
    import random

    rng = random.Random(seed)
    vertices = list(graph.vertices())
    t1, t2 = graph.min_time, graph.max_time
    theta = max(1, graph.lifetime // 3)
    queries = []
    for i in range(count):
        u, v = rng.choice(vertices), rng.choice(vertices)
        if i % 3 == 2:
            queries.append((u, v, t1, t2, theta))
        else:
            queries.append((u, v, t1, t2, None))
    return queries


def _query_request_total(metrics_doc) -> int:
    """Sum of ``server_requests_total`` over the span/theta ops."""
    entry = (metrics_doc.get("metrics") or {}).get(
        "server_requests_total") or {}
    return int(sum(
        series.get("value", 0)
        for series in entry.get("series") or []
        if (series.get("labels") or {}).get("op") in ("span", "theta")
    ))


def _poll_fleet_total(socket_path: str, expected: int,
                      timeout: float = 10.0):
    """Poll the ``metrics`` op until the fleet total reaches *expected*.

    Workers flush their snapshots on an interval; the answering worker
    flushes synchronously but its peers may lag one tick — hence the
    poll.  Returns the final merged document (or None on timeout).
    """
    deadline = time.monotonic() + timeout
    doc = None
    while time.monotonic() < deadline:
        with ServeClient(socket_path=socket_path) as client:
            response = client.metrics()
        if response.get("ok"):
            doc = response["result"]
            if _query_request_total(doc) >= expected:
                return doc
        time.sleep(0.1)
    return doc


def _write_fleet_artifacts(obs_dir, metrics_out, trace_out, trace_ids):
    """Merge the spool into the two fleet artifacts; returns failures.

    Runs after pool shutdown (every worker has written its final
    snapshot and closed its trace stream), and asserts the acceptance
    shape: at least one batch span linking >= 2 request trace ids, and
    at least one request reassembling across server → batch → engine.
    """
    import json

    from repro.obs.fleet import (
        aggregate_spool,
        merge_trace_files,
        reassemble_request,
        trace_files,
    )

    failures = []
    merged, problems = aggregate_spool(obs_dir)
    for problem in problems:
        failures.append(f"fleet metrics merge: {problem}")
    for path in (metrics_out, trace_out):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    with open(metrics_out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")

    streams = trace_files(obs_dir)
    events = merge_trace_files(streams, out_path=trace_out)
    batches = [
        e for e in events
        if e.get("name") == "server.batch"
        and len((e.get("attrs") or {}).get("traces") or []) >= 2
    ]
    if not batches:
        failures.append(
            "no batch span coalesced >= 2 traced requests "
            f"({len(events)} events from {len(streams)} stream(s))"
        )
    full = None
    for trace_id in trace_ids:
        story = reassemble_request(events, trace_id)
        if story["layers"] >= 3:
            full = story
            break
    if full is None:
        failures.append(
            f"no trace id (of {len(trace_ids)}) reassembled across "
            "server/batch/engine layers"
        )
    else:
        print(
            f"serve-smoke: trace {full['trace']!r} reassembled across "
            f"{full['layers']} layers (batch "
            f"{(full['batch'][0]['attrs'] or {}).get('batch')} linked "
            f"{len((full['batch'][0]['attrs'] or {}).get('traces') or [])} "
            f"traces); artifacts: {metrics_out}, {trace_out}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="end-to-end smoke test of the network serving tier",
    )
    parser.add_argument("--dataset", default="chess")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--pipeline", type=int, default=8)
    parser.add_argument(
        "--fleet-metrics-out", default=".scratch/serve_fleet_metrics.json",
        help="merged fleet metrics artifact ('' disables the fleet stage)",
    )
    parser.add_argument(
        "--fleet-trace-out", default=".scratch/serve_fleet_trace.jsonl",
        help="merged cross-process trace artifact",
    )
    args = parser.parse_args(argv)

    if not hasattr(os, "fork"):
        print("serve-smoke: skipped (no os.fork on this platform)")
        return 0

    fleet = bool(args.fleet_metrics_out)
    graph = load_dataset(args.dataset)
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as scratch:
        index_path = os.path.join(scratch, "smoke.till")
        TILLIndex.build(graph).compact().save(index_path, format=3)
        socket_path = os.path.join(scratch, "serve.sock")
        sock = bind_socket(socket_path=socket_path)
        provider = IndexProvider(graph, index_path, mmap=True)
        obs_dir = os.path.join(scratch, "obs") if fleet else None
        config = ServerConfig(
            max_batch=64, batch_delay=0.002,
            obs_dir=obs_dir,
            metrics_interval=0.25,
            # Threshold 0 logs (rate-limited) every request — the smoke
            # exercises the slow-log format, not a latency judgement.
            slow_query_ms=0.0 if fleet else None,
            slow_query_rate=25.0,
        )

        pool_pid = os.fork()
        if pool_pid == 0:  # pool supervisor process
            status = 1
            try:
                status = serve_prefork(provider, config, sock, args.workers)
            finally:
                os._exit(status)
        sock.close()  # driver keeps only the client side

        try:
            wait_for_server(socket_path)
            print(f"serve-smoke: pool up ({args.workers} worker(s), "
                  f"pid {pool_pid}) on {socket_path}")
            queries = make_queries(graph, args.queries)

            wave1 = run_loadgen(
                queries, socket_path=socket_path,
                concurrency=args.concurrency, pipeline=args.pipeline,
            )
            if wave1["errors"] or wave1["failures"]:
                failures.append(f"wave 1 had failures: {wave1}")
            print(f"serve-smoke: wave 1 ok={wave1['ok']} "
                  f"qps={wave1['qps']:.0f} "
                  f"p95={wave1['latency_p95_ms']:.2f}ms")

            # Hot swap both ways: the wire op (one worker) and SIGHUP
            # (every worker), then prove traffic still flows cleanly.
            with ServeClient(socket_path=socket_path) as client:
                reloaded = client.reload()
                if not reloaded.get("ok"):
                    failures.append(f"reload op failed: {reloaded}")
            os.kill(pool_pid, signal.SIGHUP)
            time.sleep(0.2)

            # Second wave: every request carries a trace id, so the
            # coalescer's batch spans link multiple member traces.
            wave2 = run_loadgen(
                queries, socket_path=socket_path,
                concurrency=args.concurrency, pipeline=args.pipeline,
                trace_every=1 if fleet else 0, trace_prefix="sm",
            )
            if wave2["errors"] or wave2["failures"]:
                failures.append(f"post-swap wave had failures: {wave2}")
            print(f"serve-smoke: post-swap wave ok={wave2['ok']} "
                  f"qps={wave2['qps']:.0f}")

            with ServeClient(socket_path=socket_path) as client:
                stats = client.stats()
            if not stats.get("ok"):
                failures.append(f"stats op failed: {stats}")

            if fleet:
                # The fleet view, answered by whichever worker accepts
                # the connection, must equal the client-side total.
                expected = sum(w["ok"] + w["errors"]
                               for w in (wave1, wave2))
                merged = _poll_fleet_total(socket_path, expected)
                got = _query_request_total(merged) if merged else 0
                if got != expected:
                    failures.append(
                        f"fleet metrics op saw {got} span/theta requests, "
                        f"client sent {expected}"
                    )
                else:
                    workers_seen = len(
                        (merged.get("fleet") or {}).get("workers") or []
                    )
                    print(f"serve-smoke: fleet metrics ok "
                          f"({got} requests across {workers_seen} "
                          "worker snapshot(s))")
        except Exception as exc:
            failures.append(f"smoke driver crashed: {exc!r}")
        finally:
            try:
                os.kill(pool_pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            _, status = os.waitpid(pool_pid, 0)
            exit_code = os.waitstatus_to_exitcode(status)
            if exit_code != 0:
                failures.append(
                    f"pool did not shut down cleanly (exit {exit_code})"
                )

        if fleet and not failures:
            failures.extend(_write_fleet_artifacts(
                obs_dir, args.fleet_metrics_out, args.fleet_trace_out,
                wave2.get("trace_ids") or [],
            ))

    if failures:
        for failure in failures:
            print(f"serve-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve-smoke: OK (zero errors, clean shutdown)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
