"""Synchronous client and load generator for the serving tier.

:class:`ServeClient` is a blocking, dependency-free NDJSON client —
the reference implementation of the wire protocol and the thing tests
and the ``repro loadgen`` CLI drive.  It supports *pipelining*: send
``k`` requests before reading any response, which is what lets a
single connection keep the server's micro-batcher fed.

:func:`run_loadgen` is the measurement harness: N threads, each with
its own connection, issuing span/theta queries over a vertex-pair
universe with per-query latency sampling and p50/p95/p99 percentiles.
It powers both ``repro loadgen`` and the PR8 bench scenario.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.serve.protocol import decode_response

#: (u, v, t1, t2, theta_or_None) — one loadgen query.
LoadQuery = Tuple[Any, Any, int, int, Optional[int]]


class ServeClient:
    """A blocking NDJSON client over a Unix socket or TCP.

    Exactly one of ``socket_path`` or ``host``/``port`` selects the
    transport.  Not thread-safe: one client per thread (the load
    generator does exactly that).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
        tenant: Optional[str] = None,
    ):
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", int(port)), timeout=timeout
            )
        self._file = self._sock.makefile("rwb")
        self.tenant = tenant
        self._next_id = 0

    # -- framing -------------------------------------------------------

    def send(self, doc: Dict[str, Any]) -> Any:
        """Write one request line (auto-assigns ``id``); returns the id.

        Does not flush — callers batch writes and :meth:`flush` once
        per pipeline window."""
        import json

        if "id" not in doc:
            doc["id"] = self._next_id
            self._next_id += 1
        if self.tenant is not None and "tenant" not in doc:
            doc["tenant"] = self.tenant
        self._file.write(json.dumps(doc, separators=(",", ":"))
                         .encode("utf-8") + b"\n")
        return doc["id"]

    def flush(self) -> None:
        self._file.flush()

    def recv(self) -> Dict[str, Any]:
        """Read one response line (blocking)."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_response(line)

    def call(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response."""
        self.send(doc)
        self.flush()
        return self.recv()

    # -- convenience ops -----------------------------------------------

    def span(self, u: Any, v: Any, t1: int, t2: int,
             trace: Optional[str] = None) -> Dict[str, Any]:
        doc = {"op": "span", "u": u, "v": v, "t1": t1, "t2": t2}
        if trace is not None:
            doc["trace"] = {"id": trace, "span": "client"}
        return self.call(doc)

    def theta(self, u: Any, v: Any, t1: int, t2: int,
              theta: int, trace: Optional[str] = None) -> Dict[str, Any]:
        doc = {"op": "theta", "u": u, "v": v,
               "t1": t1, "t2": t2, "theta": theta}
        if trace is not None:
            doc["trace"] = {"id": trace, "span": "client"}
        return self.call(doc)

    def ping(self) -> Dict[str, Any]:
        return self.call({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.call({"op": "stats"})

    def metrics(self) -> Dict[str, Any]:
        """Fetch the fleet-aggregated metrics document (``metrics`` op)."""
        return self.call({"op": "metrics"})

    def reload(self) -> Dict[str, Any]:
        """Trigger an index hot swap and wait for its acknowledgement."""
        return self.call({"op": "reload"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    if not sorted_samples:
        return 0.0
    pos = q * (len(sorted_samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_samples) - 1)
    frac = pos - lo
    return sorted_samples[lo] * (1 - frac) + sorted_samples[hi] * frac


class _WorkerResult:
    __slots__ = ("ok", "errors", "codes", "latencies", "failure", "traces")

    def __init__(self):
        self.ok = 0
        self.errors = 0
        self.codes: Dict[str, int] = {}
        self.latencies: List[float] = []
        self.failure: Optional[str] = None
        self.traces: List[str] = []


def _loadgen_worker(
    connect: Dict[str, Any],
    queries: Sequence[LoadQuery],
    pipeline: int,
    result: _WorkerResult,
    tenant: Optional[str],
    trace_every: int = 0,
    trace_prefix: str = "lg",
    worker_index: int = 0,
) -> None:
    try:
        client = ServeClient(tenant=tenant, **connect)
    except OSError as exc:
        result.failure = f"connect failed: {exc}"
        return
    try:
        n = len(queries)
        i = 0
        sent = 0
        while i < n:
            window = queries[i:i + pipeline]
            started = time.perf_counter()
            for (u, v, t1, t2, theta) in window:
                if theta is None:
                    doc = {"op": "span", "u": u, "v": v,
                           "t1": t1, "t2": t2}
                else:
                    doc = {"op": "theta", "u": u, "v": v,
                           "t1": t1, "t2": t2, "theta": theta}
                if trace_every and sent % trace_every == 0:
                    trace_id = f"{trace_prefix}-{worker_index}-{sent}"
                    doc["trace"] = {"id": trace_id, "span": "client"}
                    result.traces.append(trace_id)
                sent += 1
                client.send(doc)
            client.flush()
            for _ in window:
                response = client.recv()
                if response.get("ok"):
                    result.ok += 1
                else:
                    result.errors += 1
                    code = response.get("code", "unknown")
                    result.codes[code] = result.codes.get(code, 0) + 1
            # With pipeline=1 this is true per-query latency; with
            # deeper pipelines it is the per-window round trip.
            elapsed = time.perf_counter() - started
            result.latencies.append(elapsed / max(1, len(window)))
            i += pipeline
    except (OSError, ConnectionError) as exc:
        result.failure = f"connection lost: {exc}"
    finally:
        client.close()


def run_loadgen(
    queries: Iterable[LoadQuery],
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    concurrency: int = 4,
    pipeline: int = 16,
    tenant: Optional[str] = None,
    timeout: float = 30.0,
    trace_every: int = 0,
    trace_prefix: str = "lg",
    with_metrics: bool = False,
) -> Dict[str, Any]:
    """Drive the server with *queries* from *concurrency* connections.

    The query list is dealt round-robin across connections; each
    connection pipelines *pipeline* requests per flush.  Returns a
    result dict with ``qps``, ``ok``/``errors``/``codes``, and
    latency percentiles (seconds; per-query when ``pipeline=1``).

    ``trace_every=k`` stamps every k-th request per connection with a
    distributed-trace id (``{prefix}-{conn}-{seq}``); the sampled ids
    come back under ``"trace_ids"`` so callers can reassemble their
    server-side timelines.  ``with_metrics=True`` additionally returns
    a ``repro-metrics/1`` document of the client-side view under
    ``"metrics_doc"`` (the ``repro loadgen --metrics-out`` payload).
    """
    all_queries: List[LoadQuery] = list(queries)
    connect = {"socket_path": socket_path, "host": host, "port": port,
               "timeout": timeout}
    shards: List[List[LoadQuery]] = [[] for _ in range(max(1, concurrency))]
    for i, query in enumerate(all_queries):
        shards[i % len(shards)].append(query)
    results = [_WorkerResult() for _ in shards]
    threads = [
        threading.Thread(
            target=_loadgen_worker,
            args=(connect, shard, max(1, pipeline), result, tenant,
                  max(0, trace_every), trace_prefix, index),
            daemon=True,
        )
        for index, (shard, result) in enumerate(zip(shards, results))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    ok = sum(r.ok for r in results)
    errors = sum(r.errors for r in results)
    codes: Dict[str, int] = {}
    for r in results:
        for code, count in r.codes.items():
            codes[code] = codes.get(code, 0) + count
    failures = [r.failure for r in results if r.failure]
    latencies = sorted(x for r in results for x in r.latencies)
    result = {
        "queries": len(all_queries),
        "ok": ok,
        "errors": errors,
        "codes": codes,
        "failures": failures,
        "concurrency": len(shards),
        "pipeline": max(1, pipeline),
        "elapsed_seconds": elapsed,
        "qps": (ok + errors) / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1e3,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1e3,
    }
    if trace_every:
        result["trace_ids"] = [t for r in results for t in r.traces]
    if with_metrics:
        result["metrics_doc"] = _loadgen_metrics_doc(result, latencies)
    return result


def _loadgen_metrics_doc(result: Dict[str, Any],
                         latencies: Sequence[float]) -> Dict[str, Any]:
    """The client-side view as a ``repro-metrics/1`` document.

    Shares the server's schema so the validate tooling, the fleet
    merge and the bench ``--compare`` gate can consume load-test
    output and server output interchangeably.
    """
    from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry

    registry = MetricsRegistry()
    requests = registry.counter(
        "client_requests_total", "Loadgen responses by outcome"
    )
    if result["ok"]:
        requests.inc(result["ok"], outcome="ok")
    if result["errors"]:
        requests.inc(result["errors"], outcome="error")
    errors_by_code = registry.counter(
        "client_errors_total", "Loadgen error responses by wire code"
    )
    for code, count in sorted(result["codes"].items()):
        errors_by_code.inc(count, code=code)
    histogram = registry.histogram(
        "client_latency_seconds", DEFAULT_TIME_BUCKETS,
        "Per-query latency observed at the client "
        "(per-window mean when pipelined)",
    )
    for sample in latencies:
        histogram.observe(sample, pipeline=result["pipeline"])
    registry.gauge("client_qps", "Loadgen throughput").set(result["qps"])
    registry.gauge(
        "client_connections", "Loadgen connections"
    ).set(result["concurrency"])
    return registry.snapshot()
