"""Admission control: bounded in-flight work and per-tenant quotas.

A serving tier that accepts everything does not have lower latency —
it has *unbounded* latency, paid by every request already in the
queue.  This module makes overload explicit instead: a request is
either admitted (and counted in-flight until its response is written)
or rejected immediately with a machine-readable code, so clients can
back off while p95/p99 for admitted traffic stays flat.

Two independent gates, checked in order:

* **per-tenant token bucket** — each tenant id refills at
  ``rate`` tokens/second up to ``burst``; an empty bucket rejects with
  ``quota-exceeded``.  Tenants without an explicit quota share the
  default quota (``None`` = unmetered).
* **global in-flight bound** — at most ``max_inflight`` admitted
  requests may be queued/executing at once; past that the server is
  genuinely behind and rejects with ``overloaded``.

The controller is used from a single event loop (the server's
per-worker asyncio loop), so it does not lock; the clock is injected
for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.serve.protocol import OVERLOADED, QUOTA_EXCEEDED

#: (rate tokens/second, burst) — the shape of one tenant quota.
Quota = Tuple[float, float]


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        if rate < 0 or burst <= 0:
            raise ValueError("token bucket needs rate >= 0 and burst > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Take *cost* tokens if available; refills lazily from *now*."""
        if now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
            self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class AdmissionController:
    """The two-gate admission decision for one worker.

    Parameters
    ----------
    max_inflight:
        Global bound on admitted-but-unanswered requests (``0`` or
        negative disables the bound).
    quotas:
        Per-tenant ``{tenant: (rate, burst)}`` overrides.
    default_quota:
        Quota applied to tenants not listed in *quotas*; ``None``
        (default) leaves them unmetered.
    clock:
        Monotonic-seconds callable, injectable for tests.
    """

    def __init__(
        self,
        max_inflight: int = 1024,
        quotas: Optional[Dict[str, Quota]] = None,
        default_quota: Optional[Quota] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.max_inflight = max_inflight
        self.inflight = 0
        self._clock = clock
        self._quotas = dict(quotas or {})
        self._default_quota = default_quota
        self._buckets: Dict[str, TokenBucket] = {}
        # Peak in-flight since start; a cheap high-water mark for stats.
        self.peak_inflight = 0
        self.admitted = 0
        self.rejected: Dict[str, int] = {}

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self._quotas.get(tenant, self._default_quota)
            if quota is None:
                return None
            bucket = self._buckets[tenant] = TokenBucket(
                quota[0], quota[1], self._clock()
            )
        return bucket

    def try_admit(self, tenant: str) -> Optional[str]:
        """Admit one request for *tenant*; returns a rejection code or
        ``None`` (admitted — the caller MUST :meth:`release` later)."""
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.allow(self._clock()):
            self.rejected[QUOTA_EXCEEDED] = (
                self.rejected.get(QUOTA_EXCEEDED, 0) + 1
            )
            return QUOTA_EXCEEDED
        if 0 < self.max_inflight <= self.inflight:
            self.rejected[OVERLOADED] = self.rejected.get(OVERLOADED, 0) + 1
            return OVERLOADED
        self.inflight += 1
        self.admitted += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        return None

    def release(self) -> None:
        """One admitted request finished (its response was written)."""
        self.inflight -= 1

    def stats(self) -> Dict[str, object]:
        return {
            "inflight": self.inflight,
            "peak_inflight": self.peak_inflight,
            "max_inflight": self.max_inflight,
            "admitted": self.admitted,
            "rejected": dict(self.rejected),
        }


def parse_quota(spec: str) -> Tuple[str, Quota]:
    """Parse one CLI quota spec ``tenant=rate[:burst]``.

    ``rate`` is tokens/second; ``burst`` defaults to ``max(rate, 1)``.
    The tenant name ``*`` sets the default quota for unlisted tenants.
    """
    if "=" not in spec:
        raise ValueError(
            f"bad quota {spec!r}: expected tenant=rate[:burst]"
        )
    tenant, _, rest = spec.partition("=")
    rate_s, _, burst_s = rest.partition(":")
    try:
        rate = float(rate_s)
        burst = float(burst_s) if burst_s else max(rate, 1.0)
    except ValueError:
        raise ValueError(
            f"bad quota {spec!r}: rate and burst must be numbers"
        )
    if not tenant:
        raise ValueError(f"bad quota {spec!r}: empty tenant name")
    return tenant, (rate, burst)
