"""The serving tier's wire protocol: newline-delimited JSON.

One request per line, one response line per request, over TCP or a
Unix socket.  The framing is deliberately boring — every language has
a line reader and a JSON parser, a ``netcat`` session is a usable
debugging client, and the server's coalescer can cheaply peel
thousands of pipelined lines off one connection before flushing a
micro-batch.

Request::

    {"op": "span",  "u": 5, "v": 40, "t1": 0, "t2": 900}
    {"op": "theta", "u": 5, "v": 40, "t1": 0, "t2": 900, "theta": 3}
    {"op": "ping"}
    {"op": "stats"}
    {"op": "reload"}

Optional request fields: ``"id"`` (any JSON scalar, echoed verbatim in
the response so pipelined clients can match answers out of order),
``"tenant"`` (a string, used for per-tenant quota accounting; requests
without one share the :data:`DEFAULT_TENANT` bucket) and ``"trace"``
(distributed-tracing context: ``{"id": "...", "span": ...}`` — the
client's trace id plus its parent span reference, carried through
admission, the micro-batcher and the engine so per-worker trace
streams can be reassembled into one end-to-end timeline; see
:mod:`repro.obs.fleet`).

The ``metrics`` control op answers the **fleet-aggregated** metrics
view (every worker's spooled snapshot merged), unlike ``stats`` which
reports the answering worker alone.

Response::

    {"id": ..., "ok": true,  "answer": true}
    {"id": ..., "ok": false, "code": "overloaded", "error": "..."}

``code`` is machine-readable (one of :data:`ERROR_CODES`); ``error``
is the human-readable message.  ``stats``/``ping``/``reload`` replies
carry their payload under ``"result"`` instead of ``"answer"``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ReproError

#: Tenant bucket used when a request carries no ``"tenant"`` field.
DEFAULT_TENANT = "default"

#: Machine-readable rejection/failure codes.
BAD_REQUEST = "bad-request"
UNKNOWN_VERTEX = "unknown-vertex"
BAD_WINDOW = "bad-window"
UNSUPPORTED = "unsupported"
OVERLOADED = "overloaded"
QUOTA_EXCEEDED = "quota-exceeded"
SHUTTING_DOWN = "shutting-down"
INTERNAL = "internal"

ERROR_CODES = (
    BAD_REQUEST, UNKNOWN_VERTEX, BAD_WINDOW, UNSUPPORTED,
    OVERLOADED, QUOTA_EXCEEDED, SHUTTING_DOWN, INTERNAL,
)

#: Query operations (coalesced into micro-batches) vs. control
#: operations (answered immediately, never queued behind a batch).
QUERY_OPS = ("span", "theta")
CONTROL_OPS = ("ping", "stats", "reload", "metrics")


class ProtocolError(ReproError):
    """A request line that cannot be served; carries a wire code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class Request:
    """One parsed request line."""

    op: str
    u: Any = None
    v: Any = None
    t1: Optional[int] = None
    t2: Optional[int] = None
    theta: Optional[int] = None
    id: Any = None
    tenant: str = DEFAULT_TENANT
    trace_id: Optional[str] = None
    parent_span: Any = None

    @property
    def window(self):
        return (self.t1, self.t2)


def parse_request(line: bytes) -> Request:
    """Parse one wire line into a validated :class:`Request`.

    Raises :class:`ProtocolError` (code ``bad-request``) on malformed
    JSON, a non-object payload, an unknown ``op``, or missing/mistyped
    fields; the server turns that into a per-request error response
    without dropping the connection.
    """
    try:
        doc = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(BAD_REQUEST, f"request is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ProtocolError(
            BAD_REQUEST, f"request must be a JSON object, got {type(doc).__name__}"
        )
    op = doc.get("op")
    if op not in QUERY_OPS and op not in CONTROL_OPS:
        known = ", ".join(QUERY_OPS + CONTROL_OPS)
        raise ProtocolError(
            BAD_REQUEST, f"unknown op {op!r}; known ops: {known}"
        )
    tenant = doc.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(
            BAD_REQUEST, "tenant must be a non-empty string"
        )
    request = Request(op=op, id=doc.get("id"), tenant=tenant)
    trace = doc.get("trace")
    if trace is not None:
        if not isinstance(trace, dict) or not isinstance(
            trace.get("id"), str
        ) or not trace["id"]:
            raise ProtocolError(
                BAD_REQUEST,
                "trace must be an object with a non-empty string 'id'",
            )
        request.trace_id = trace["id"]
        request.parent_span = trace.get("span")
    if op in CONTROL_OPS:
        return request
    for field in ("u", "v", "t1", "t2"):
        if field not in doc:
            raise ProtocolError(
                BAD_REQUEST, f"{op} request is missing field {field!r}"
            )
    for field in ("t1", "t2"):
        if not isinstance(doc[field], int) or isinstance(doc[field], bool):
            raise ProtocolError(
                BAD_REQUEST, f"{field} must be an integer timestamp"
            )
    request.u, request.v = doc["u"], doc["v"]
    request.t1, request.t2 = doc["t1"], doc["t2"]
    if op == "theta":
        theta = doc.get("theta")
        if not isinstance(theta, int) or isinstance(theta, bool):
            raise ProtocolError(
                BAD_REQUEST, "theta request needs an integer 'theta' field"
            )
        request.theta = theta
    return request


def encode_answer(request_id: Any, answer: bool) -> bytes:
    return (json.dumps(
        {"id": request_id, "ok": True, "answer": bool(answer)},
        separators=(",", ":"),
    ) + "\n").encode("utf-8")


def encode_result(request_id: Any, result: Dict[str, Any]) -> bytes:
    return (json.dumps(
        {"id": request_id, "ok": True, "result": result},
        separators=(",", ":"), sort_keys=True, default=str,
    ) + "\n").encode("utf-8")


def encode_error(request_id: Any, code: str, message: str) -> bytes:
    return (json.dumps(
        {"id": request_id, "ok": False, "code": code, "error": message},
        separators=(",", ":"),
    ) + "\n").encode("utf-8")


def decode_response(line: bytes) -> Dict[str, Any]:
    """Client-side parse of one response line (raises on non-JSON)."""
    doc = json.loads(line)
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ProtocolError(INTERNAL, f"malformed response line: {line!r}")
    return doc
