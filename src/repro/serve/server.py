"""The network serving tier: asyncio front end + pre-fork worker pool.

This is the "millions of users" layer: it turns one machine's TILL
index into a service.  The pieces, and why each exists:

* **One physical index copy.**  Every worker process opens the same
  format-3 ``.till`` with ``mmap=True`` (enforced loudly via
  ``require_mmap``), so the flat label arrays live once in the OS page
  cache no matter how many workers serve them — the disk-resident
  posture that makes worker count a CPU knob, not a memory knob.
* **Micro-batching** (:mod:`repro.serve.batching`).  Concurrent point
  queries coalesce into ``(op, window, θ)`` batches and run through
  the :class:`~repro.serve.QueryEngine` batch-kernel path, so the
  network tier serves at batch throughput, not scalar throughput.
* **Admission control** (:mod:`repro.serve.admission`).  A bounded
  in-flight queue and per-tenant token buckets reject overload
  explicitly (``overloaded`` / ``quota-exceeded``) instead of letting
  queue latency grow without bound.
* **Hot swap.**  ``SIGHUP`` (or the ``reload`` op) re-opens the index
  file, atomically swaps it into the engine, and generation-bumps the
  result cache.  In-flight batches bound the old index at entry and
  complete against it; the old mapping is dropped when the last
  reference dies.  Zero in-flight queries fail.
* **Pre-fork workers.**  The parent binds the listening socket, forks
  N children, and forwards ``SIGHUP``/``SIGTERM``; each child runs its
  own event loop, engine, and executor, so workers share nothing but
  the socket and the page cache — which is why the per-worker engine
  only needs ``thread_safe=True`` against its own coalescer, never
  cross-process locks.

Protocol: newline-delimited JSON (:mod:`repro.serve.protocol`) over a
Unix socket or TCP.  Telemetry: ``server_*`` metrics in
:mod:`repro.obs` (see docs/usage.md, "Serving over the network").
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket as socket_module
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.index import TILLIndex
from repro.errors import (
    InvalidIntervalError,
    ReproError,
    UnknownVertexError,
    UnsupportedIntervalError,
)
from repro.serve.admission import AdmissionController, Quota
from repro.serve.batching import BatchKey, MicroBatcher
from repro.serve.engine import QueryEngine
from repro.serve.protocol import (
    BAD_WINDOW,
    INTERNAL,
    SHUTTING_DOWN,
    UNKNOWN_VERTEX,
    UNSUPPORTED,
    ProtocolError,
    Request,
    encode_answer,
    encode_error,
    encode_result,
    parse_request,
)


def _code_for(exc: BaseException) -> str:
    """Map an engine/graph exception to a wire error code."""
    if isinstance(exc, UnknownVertexError):
        return UNKNOWN_VERTEX
    if isinstance(exc, UnsupportedIntervalError):
        return UNSUPPORTED
    if isinstance(exc, InvalidIntervalError):
        return BAD_WINDOW
    return INTERNAL


@dataclass
class ServerConfig:
    """Tuning knobs for one worker (shared by all workers of a pool)."""

    #: Flush a micro-batch at this many queries even before the timer.
    max_batch: int = 512
    #: Seconds a lone query may wait for company before flushing.
    batch_delay: float = 0.002
    #: Global bound on admitted-but-unanswered queries (0 = unbounded).
    max_inflight: int = 4096
    #: Per-tenant ``{tenant: (rate/s, burst)}`` token-bucket overrides.
    quotas: Dict[str, Quota] = field(default_factory=dict)
    #: Quota for tenants not listed in ``quotas`` (None = unmetered).
    default_quota: Optional[Quota] = None
    #: Engine result-cache capacity (per worker).
    cache_size: int = 4096
    #: Threads executing engine batch calls (1 keeps batches serial
    #: while the loop coalesces the next one; >1 needs nothing extra —
    #: the engine is constructed thread-safe either way).
    executor_threads: int = 1
    #: Kernel thread-pool width inside the engine (the
    #: :class:`~repro.serve.engine.ParallelKernelExecutor`): oversized
    #: coalesced batches are split on source-run boundaries and run
    #: concurrently.  Distinct from ``executor_threads`` (which runs
    #: whole batches) and from the pre-fork worker count; the speedup
    #: is real only with the GIL-releasing ``native`` kernels.
    kernel_threads: int = 1
    #: Fleet spool directory: when set, every worker builds its own
    #: telemetry, streams its trace to ``trace-{pid}.jsonl`` in here,
    #: and publishes metrics snapshots to ``metrics-{pid}.json`` every
    #: ``metrics_interval`` seconds (plus on shutdown and on every
    #: ``metrics`` op).  The ``metrics`` wire op and the Prometheus
    #: endpoint aggregate this directory.
    obs_dir: Optional[str] = None
    #: Seconds between periodic spool flushes.
    metrics_interval: float = 2.0
    #: Per-worker metrics snapshot written at shutdown; ``{pid}`` /
    #: ``{worker}`` placeholders are expanded (required when shared by
    #: a pre-fork pool).
    metrics_out: Optional[str] = None
    #: Per-worker trace stream (JSON lines, appended live); same
    #: placeholder rules as ``metrics_out``.
    trace_out: Optional[str] = None
    #: Slow-query threshold in milliseconds (None disables the log;
    #: 0 logs every request, useful for smoke runs).
    slow_query_ms: Optional[float] = None
    #: Slow-query log path template (defaults to ``slow-{pid}.jsonl``
    #: inside ``obs_dir`` when that is set).
    slow_query_log: Optional[str] = None
    #: Max slow-query lines written per second (token bucket; beyond
    #: it lines are counted as suppressed, never written).
    slow_query_rate: float = 10.0


class IndexProvider:
    """Opens — and re-opens, for hot swap — one worker's index.

    ``index_path`` set: loads the saved ``.till``; with ``mmap=True``
    (the serving default) the flat section is mapped zero-copy and a
    non-mappable format-2 file is rejected with the rebuild command
    (``require_mmap``).  ``index_path`` unset: builds the index from
    the graph in-process (small datasets, tests).
    """

    def __init__(
        self,
        graph,
        index_path: Optional[str] = None,
        mmap: bool = True,
        flat_backend: Optional[str] = "auto",
        vartheta: Optional[int] = None,
    ):
        self.graph = graph
        self.index_path = index_path
        self.mmap = mmap
        self.flat_backend = flat_backend
        self.vartheta = vartheta

    def open(self) -> TILLIndex:
        if self.index_path is not None:
            index = TILLIndex.load(
                self.index_path, self.graph,
                mmap=self.mmap, require_mmap=self.mmap,
            )
        else:
            index = TILLIndex.build(self.graph, vartheta=self.vartheta)
            index.compact()
        if self.flat_backend is not None:
            index.flatten(backend=self.flat_backend)
        return index


class ReachabilityServer:
    """One worker: an asyncio acceptor over a thread-safe engine."""

    def __init__(
        self,
        provider: IndexProvider,
        config: Optional[ServerConfig] = None,
        telemetry=None,
        worker_id: int = 0,
    ):
        self.provider = provider
        self.config = config or ServerConfig()
        self.worker_id = worker_id
        self.engine: Optional[QueryEngine] = None
        self.generation = 0
        self.hot_swaps = 0
        self._started = time.time()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[MicroBatcher] = None
        self._draining = False
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            quotas=self.config.quotas,
            default_quota=self.config.default_quota,
        )
        # --- fleet observability (spool reporter, trace stream,
        # slow-query log); builds this worker's telemetry when the
        # config asks for observability and none was injected ---
        self.telemetry = telemetry
        self._fleet = None
        self._trace_sink = None
        self._slowlog = None
        self._metrics_out_path: Optional[str] = None
        self._init_fleet_obs()
        telemetry = self.telemetry
        # --- telemetry instruments (None when telemetry is off) ---
        self._obs = None
        if telemetry is not None:
            from repro.obs.metrics import DEFAULT_TIME_BUCKETS

            m = telemetry.metrics
            self._obs = {
                "requests": m.counter(
                    "server_requests_total",
                    "Requests by op and outcome (ok or error code)",
                ),
                "rejections": m.counter(
                    "server_rejections_total",
                    "Admission rejections by reason",
                ),
                "tenants": m.counter(
                    "server_tenant_requests_total",
                    "Admitted queries per tenant",
                ),
                "latency": m.histogram(
                    "server_request_seconds", DEFAULT_TIME_BUCKETS,
                    "Admission-to-response latency per query op",
                ),
                "inflight": m.gauge(
                    "server_inflight",
                    "Admitted queries currently queued or executing",
                ),
                "connections": m.counter(
                    "server_connections_total", "Accepted connections"
                ),
                "open_connections": m.gauge(
                    "server_connections_open", "Currently open connections"
                ),
                "swaps": m.counter(
                    "server_hot_swaps_total", "Completed index hot swaps"
                ),
                "generation": m.gauge(
                    "server_index_generation",
                    "Index generation (bumped by each hot swap)",
                ),
            }

    # ------------------------------------------------------------------
    # fleet observability plumbing
    # ------------------------------------------------------------------

    def _expand(self, template: str) -> str:
        return template.replace("{pid}", str(os.getpid())).replace(
            "{worker}", str(self.worker_id)
        )

    def _init_fleet_obs(self) -> None:
        """Build per-worker telemetry/spool/trace/slowlog from config.

        Runs in the worker process (post-fork), so ``{pid}`` paths and
        the spool filenames are per-worker by construction.
        """
        config = self.config
        wants_obs = bool(
            config.obs_dir or config.trace_out or config.metrics_out
            or config.slow_query_ms is not None
        )
        if self.telemetry is None and not wants_obs:
            return
        from repro.obs import Telemetry
        from repro.obs.fleet import FleetReporter, spool_trace_path
        from repro.obs.trace import AppendSink, SpanTracer

        trace_path = None
        if config.trace_out:
            trace_path = self._expand(config.trace_out)
        elif config.obs_dir:
            os.makedirs(config.obs_dir, exist_ok=True)
            trace_path = spool_trace_path(config.obs_dir)
        if self.telemetry is None:
            # Servers run indefinitely: never retain events in memory.
            self.telemetry = Telemetry(tracer=SpanTracer(keep=False))
        tracer = self.telemetry.tracer
        if trace_path is not None and tracer:
            self._trace_sink = AppendSink(
                trace_path, wall_epoch=tracer.wall_epoch,
                extra={"pid": os.getpid(), "worker": self.worker_id},
            )
            tracer.set_sink(self._trace_sink)
        if config.obs_dir:
            self._fleet = FleetReporter(
                self.telemetry, config.obs_dir,
                worker_id=self.worker_id,
            )
        if config.metrics_out:
            self._metrics_out_path = self._expand(config.metrics_out)
        if config.slow_query_ms is not None:
            from repro.obs.slowlog import SlowQueryLog

            log_path = (
                self._expand(config.slow_query_log)
                if config.slow_query_log
                else (os.path.join(config.obs_dir,
                                   f"slow-{os.getpid()}.jsonl")
                      if config.obs_dir else None)
            )
            if log_path is not None:
                self._slowlog = SlowQueryLog(
                    log_path,
                    threshold_s=config.slow_query_ms / 1000.0,
                    max_per_sec=config.slow_query_rate,
                    telemetry=self.telemetry,
                    worker=self.worker_id,
                )

    async def _flush_metrics_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.metrics_interval)
            try:
                self._fleet.flush()
            except OSError:
                pass  # spool momentarily unwritable; next tick retries

    def fleet_metrics(self) -> Dict[str, Any]:
        """The ``metrics`` op payload: the fleet-aggregated view.

        Flushes *this* worker's snapshot first (so the answering
        worker is always current), then merges every snapshot in the
        spool.  Without a spool the single-worker registry is merged
        alone — same document shape either way.
        """
        from repro.obs.fleet import aggregate_spool, merge_metrics_docs

        if self._fleet is not None:
            self._fleet.flush()
            merged, problems = aggregate_spool(self._fleet.spool)
        elif self.telemetry is not None:
            doc = self.telemetry.metrics.snapshot()
            doc["worker"] = {"pid": os.getpid(), "id": self.worker_id}
            merged, problems = merge_metrics_docs([doc])
        else:
            raise ReproError(
                "metrics op needs telemetry; start the server with "
                "--obs-dir (or --metrics-out)"
            )
        merged["problems"] = problems
        return merged

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def open_engine(self) -> None:
        """Open the index and build this worker's engine (idempotent)."""
        if self.engine is None:
            self.engine = QueryEngine(
                self.provider.open(),
                cache_size=self.config.cache_size,
                telemetry=self.telemetry,
                thread_safe=True,
                kernel_threads=max(1, self.config.kernel_threads),
            )

    async def serve(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        sock: Optional[socket_module.socket] = None,
        ready=None,
        install_signals: bool = False,
    ) -> None:
        """Accept and serve until :meth:`stop` (or SIGTERM/SIGINT).

        Exactly one of ``socket_path``, ``host``/``port``, or an
        already-bound listening ``sock`` (the pre-fork case) selects
        the transport.  ``ready`` (a ``threading.Event``) is set once
        accepting — test harnesses block on it.  ``install_signals``
        wires SIGHUP→hot swap and SIGTERM/SIGINT→graceful stop (only
        possible on a main-thread loop).
        """
        self.open_engine()
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.executor_threads),
            thread_name_prefix=f"serve-w{self.worker_id}",
        )
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_batch=self.config.max_batch,
            max_delay=self.config.batch_delay,
            telemetry=self.telemetry,
        )
        if install_signals:
            try:
                loop.add_signal_handler(signal.SIGHUP, self.request_hot_swap)
                loop.add_signal_handler(signal.SIGTERM, self.stop)
                loop.add_signal_handler(signal.SIGINT, self.stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        if sock is not None:
            if sock.family == getattr(socket_module, "AF_UNIX", None):
                server = await asyncio.start_unix_server(
                    self._serve_connection, sock=sock
                )
            else:
                server = await asyncio.start_server(
                    self._serve_connection, sock=sock
                )
        elif socket_path is not None:
            server = await asyncio.start_unix_server(
                self._serve_connection, path=socket_path
            )
        else:
            server = await asyncio.start_server(
                self._serve_connection, host=host or "127.0.0.1",
                port=0 if port is None else port,
            )
        flush_task = (
            loop.create_task(self._flush_metrics_loop())
            if self._fleet is not None else None
        )
        try:
            if ready is not None:
                ready.set()
            await self._stop.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            # Graceful: every admitted query gets its response.
            await self._batcher.drain()
            self._executor.shutdown(wait=True)
            if flush_task is not None:
                flush_task.cancel()
            if self._fleet is not None:
                try:
                    self._fleet.flush()  # final snapshot incl. drain
                except OSError:
                    pass
            if self._metrics_out_path is not None:
                self.telemetry.write_metrics(self._metrics_out_path)
            if self._slowlog is not None:
                self._slowlog.close()
            if self._trace_sink is not None:
                self.telemetry.tracer.set_sink(None)
                self._trace_sink.close()

    def stop(self) -> None:
        """Request a graceful stop (thread-safe and signal-safe)."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------

    def request_hot_swap(self) -> None:
        """Schedule a hot swap on the loop (SIGHUP handler)."""
        if self._loop is not None:
            self._loop.create_task(self.hot_swap())

    async def hot_swap(self) -> Dict[str, Any]:
        """Open the index anew and swap it in under live traffic.

        The (slow) open runs on the loop's default executor so serving
        continues; the swap itself is one reference assignment plus a
        cache generation bump.  Queries batched before the swap finish
        against the old mapping; queries batched after it answer from
        the new one; none fail.
        """
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        new_index = await loop.run_in_executor(None, self.provider.open)
        self.engine.swap_index(new_index)
        self.generation += 1
        self.hot_swaps += 1
        seconds = time.perf_counter() - started
        if self._obs is not None:
            self._obs["swaps"].inc()
            self._obs["generation"].set(self.generation)
        return {
            "generation": self.generation,
            "swap_seconds": seconds,
            "cache_generation": self.engine.stats().generation,
        }

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        obs = self._obs
        if obs is not None:
            obs["connections"].inc()
            obs["open_connections"].add(1)
        # Responses go back in request order even though batches
        # complete out of order: each request contributes one slot to
        # a FIFO of futures the writer coroutine drains.  (Pipelined
        # clients may also match on the echoed "id".)
        queue: "asyncio.Queue[Optional[Any]]" = asyncio.Queue()
        writer_task = asyncio.get_running_loop().create_task(
            self._write_responses(queue, writer)
        )
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip() == b"":
                    continue
                queue.put_nowait(self._dispatch(line))
        finally:
            queue.put_nowait(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if obs is not None:
                obs["open_connections"].add(-1)

    async def _write_responses(self, queue, writer) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            payload = await item if asyncio.isfuture(item) else item
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, OSError):
                return  # client went away; keep draining admissions

    def _dispatch(self, line: bytes):
        """One request line → response bytes, or a future of them."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self._count("?", exc.code)
            return encode_error(None, exc.code, str(exc))
        if request.op == "ping":
            self._count("ping", "ok")
            return encode_result(request.id, {
                "pong": True, "worker": self.worker_id,
                "generation": self.generation,
            })
        if request.op == "stats":
            self._count("stats", "ok")
            return encode_result(request.id, self.describe())
        if request.op == "metrics":
            try:
                payload = self.fleet_metrics()
            except ReproError as exc:
                self._count("metrics", UNSUPPORTED)
                return encode_error(request.id, UNSUPPORTED, str(exc))
            self._count("metrics", "ok")
            return encode_result(request.id, payload)
        if request.op == "reload":
            future = asyncio.get_running_loop().create_task(
                self._reload_response(request)
            )
            return future
        return self._dispatch_query(request)

    async def _reload_response(self, request: Request) -> bytes:
        try:
            info = await self.hot_swap()
        except Exception as exc:  # e.g. the file was replaced corrupt
            self._count("reload", INTERNAL)
            return encode_error(request.id, INTERNAL,
                               f"hot swap failed: {exc}")
        self._count("reload", "ok")
        return encode_result(request.id, info)

    def _dispatch_query(self, request: Request):
        op = request.op
        if self._draining:
            self._count(op, SHUTTING_DOWN)
            return encode_error(request.id, SHUTTING_DOWN,
                               "server is draining")
        graph = self.provider.graph
        # Pre-resolve vertices so one bad id rejects THIS request, not
        # the whole micro-batch it would have been coalesced into.
        try:
            graph.index_of(request.u)
            graph.index_of(request.v)
        except UnknownVertexError as exc:
            self._count(op, UNKNOWN_VERTEX)
            return encode_error(request.id, UNKNOWN_VERTEX, str(exc))
        rejection = self.admission.try_admit(request.tenant)
        if rejection is not None:
            self._count(op, rejection)
            if self._obs is not None:
                self._obs["rejections"].inc(reason=rejection)
            return encode_error(
                request.id, rejection,
                f"request rejected ({rejection}); retry with backoff",
            )
        obs = self._obs
        if obs is not None:
            obs["inflight"].set(self.admission.inflight)
            obs["tenants"].inc(tenant=request.tenant)
        admitted_at = time.perf_counter()
        # The batcher fills this with {batch, size, cause} at flush —
        # the request's route, for the slow-query log and its span.
        meta: Optional[Dict[str, Any]] = (
            {} if (self._slowlog is not None or request.trace_id)
            else None
        )
        answer_future = self._batcher.submit(
            op, (request.u, request.v), request.t1, request.t2,
            request.theta, trace=request.trace_id, meta=meta,
        )
        return asyncio.get_running_loop().create_task(
            self._finish_query(request, answer_future, admitted_at, meta)
        )

    async def _finish_query(self, request: Request, answer_future,
                            admitted_at: float,
                            meta: Optional[Dict[str, Any]] = None) -> bytes:
        op = request.op
        outcome = "ok"
        try:
            answer = await answer_future
        except ReproError as exc:
            code = outcome = _code_for(exc)
            self._count(op, code)
            return encode_error(request.id, code, str(exc))
        except Exception as exc:
            outcome = INTERNAL
            self._count(op, INTERNAL)
            return encode_error(request.id, INTERNAL,
                               f"internal error: {exc}")
        finally:
            self.admission.release()
            elapsed = time.perf_counter() - admitted_at
            obs = self._obs
            if obs is not None:
                obs["inflight"].set(self.admission.inflight)
                obs["latency"].observe(elapsed, op=op)
            tracer = (self.telemetry.tracer
                      if self.telemetry is not None else None)
            if request.trace_id and tracer:
                now = tracer.now()
                tracer.record_span(
                    "server.request", now - elapsed, elapsed,
                    trace=request.trace_id,
                    parent_span=request.parent_span,
                    op=op, tenant=request.tenant, outcome=outcome,
                    batch=(meta or {}).get("batch"),
                )
            if self._slowlog is not None:
                self._slowlog.maybe_record(
                    elapsed, op=op,
                    u=request.u, v=request.v,
                    t1=request.t1, t2=request.t2, theta=request.theta,
                    tenant=request.tenant,
                    trace=request.trace_id,
                    batch=(meta or {}).get("batch"),
                    batch_size=(meta or {}).get("size"),
                    route=(meta or {}).get("cause"),
                    outcome=outcome,
                )
        self._count(op, "ok")
        return encode_answer(request.id, answer)

    async def _execute_batch(self, key: BatchKey,
                             pairs: List[Tuple[Any, Any]],
                             meta: Optional[Dict[str, Any]] = None,
                             ) -> List[bool]:
        """Run one coalesced batch on the executor thread."""
        op, t1, t2, theta = key
        engine = self.engine
        loop = asyncio.get_running_loop()
        tracer = (self.telemetry.tracer
                  if self.telemetry is not None else None)
        traced = bool(tracer) and bool(meta and meta.get("traces"))
        started = tracer.now() if traced else 0.0
        try:
            if op == "span":
                return await loop.run_in_executor(
                    self._executor,
                    lambda: engine.span_many(pairs, (t1, t2)),
                )
            return await loop.run_in_executor(
                self._executor,
                lambda: engine.theta_many(pairs, (t1, t2), theta),
            )
        finally:
            if traced:
                # Engine-layer span, linked to the batch span by the
                # shared batch label (same worker, same pid).
                tracer.record_span(
                    "engine.execute", started, tracer.now() - started,
                    batch=meta["batch"], op=op, size=len(pairs),
                )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _count(self, op: str, outcome: str) -> None:
        if self._obs is not None:
            self._obs["requests"].inc(op=op, outcome=outcome)

    def describe(self) -> Dict[str, Any]:
        """The ``stats`` op payload: engine + admission + batcher."""
        batcher = self._batcher
        return {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self._started,
            "generation": self.generation,
            "hot_swaps": self.hot_swaps,
            "engine": self.engine.stats().as_dict()
            if self.engine is not None else None,
            "admission": self.admission.stats(),
            "batcher": {
                "max_batch": self.config.max_batch,
                "batch_delay": self.config.batch_delay,
                "flushed_batches": batcher.flushed_batches
                if batcher is not None else 0,
                "flushed_queries": batcher.flushed_queries
                if batcher is not None else 0,
            },
            "obs": {
                "spool": self._fleet.spool
                if self._fleet is not None else None,
                "trace_stream": self._trace_sink.path
                if self._trace_sink is not None else None,
                "slow_query_log": self._slowlog.path
                if self._slowlog is not None else None,
            },
        }


# ----------------------------------------------------------------------
# sockets + pre-fork pool
# ----------------------------------------------------------------------


def bind_socket(socket_path: Optional[str] = None,
                host: Optional[str] = None,
                port: Optional[int] = None,
                backlog: int = 128) -> socket_module.socket:
    """Bind the listening socket the parent hands to every worker."""
    if socket_path is not None:
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        sock = socket_module.socket(socket_module.AF_UNIX,
                                    socket_module.SOCK_STREAM)
        sock.bind(socket_path)
    else:
        sock = socket_module.socket(socket_module.AF_INET,
                                    socket_module.SOCK_STREAM)
        sock.setsockopt(socket_module.SOL_SOCKET,
                        socket_module.SO_REUSEADDR, 1)
        sock.bind((host or "127.0.0.1", port or 0))
    sock.listen(backlog)
    sock.setblocking(False)
    return sock


def _run_worker(provider: IndexProvider, config: ServerConfig,
                sock: socket_module.socket, worker_id: int,
                telemetry=None) -> None:
    server = ReachabilityServer(provider, config, telemetry=telemetry,
                                worker_id=worker_id)
    asyncio.run(server.serve(sock=sock, install_signals=True))


def serve_prefork(
    provider: IndexProvider,
    config: ServerConfig,
    sock: socket_module.socket,
    workers: int,
    telemetry=None,
    log=None,
) -> int:
    """Fork *workers* children accepting on *sock*; parent supervises.

    Every child opens its own engine — the same ``.till`` mapped
    read-only, one physical copy in the page cache — and runs an
    independent event loop.  The parent forwards ``SIGHUP`` (hot swap
    every worker), ``SIGTERM`` and ``SIGINT`` (graceful stop), then
    reaps.  Returns the worst child exit status.
    """
    if not hasattr(os, "fork"):
        raise ReproError(
            "pre-fork serving needs os.fork(); run with --workers 1 "
            "on this platform"
        )
    if workers > 1:
        # A shared output path across workers would interleave or
        # clobber; demand a per-process template up front.
        for option, template in (("--trace-out", config.trace_out),
                                 ("--metrics-out", config.metrics_out),
                                 ("--slow-query-log",
                                  config.slow_query_log)):
            if template and "{pid}" not in template \
                    and "{worker}" not in template:
                kind = ("trace-{pid}.jsonl" if option == "--trace-out"
                        else "metrics-{pid}.json"
                        if option == "--metrics-out"
                        else "slow-{pid}.jsonl")
                raise ReproError(
                    f"{option} {template!r} is shared by {workers} "
                    f"pre-fork workers; use a per-worker template like "
                    f"{kind!r} (or --obs-dir, which spools per-pid "
                    "files automatically)"
                )
    pids: List[int] = []
    for worker_id in range(workers):
        pid = os.fork()
        if pid == 0:  # child
            status = 0
            try:
                _run_worker(provider, config, sock, worker_id,
                            telemetry=telemetry)
            except BaseException:
                status = 1
            finally:
                os._exit(status)
        pids.append(pid)
    if log is not None:
        log(f"forked {workers} worker(s): {pids}")

    def forward(signum, _frame):
        for pid in pids:
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    previous = {}
    for signum in (signal.SIGHUP, signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, forward)
    worst = 0
    try:
        for pid in pids:
            while True:
                try:
                    _, status = os.waitpid(pid, 0)
                    break
                except InterruptedError:
                    continue  # signal arrived; keep waiting for exit
            code = os.waitstatus_to_exitcode(status)
            worst = max(worst, abs(code))
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return worst
