"""LRU result cache with generation-based invalidation.

The serving layer memoizes boolean query answers keyed on
``(u, v, window, theta)``.  An answer is only valid for the graph state
it was computed against, so every entry is stamped with the cache's
*generation* at insert time.  Invalidation is O(1): a mutation bumps
the generation and stale entries are dropped lazily on their next
lookup (or pushed out by normal LRU pressure), so an edge insert never
pays a full-cache sweep on the hot path.

Counters (hits / misses / evictions / stale drops) are plain attributes
read by :class:`repro.serve.QueryEngine` for its observability surface.

Concurrency contract: by default the cache is single-threaded (the
engine's documented per-worker isolation).  ``thread_safe=True`` guards
every mutating path with one lock so concurrent batch submission —
the network server's coalescer flushing from an executor thread while
the event loop reads stats or hot-swaps the index — cannot corrupt the
LRU order, the stale accounting, or the counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Tuple

#: Sentinel distinguishing "not cached" from a cached ``False`` answer.
MISS = object()


class GenerationalLRUCache:
    """A bounded LRU mapping whose entries expire wholesale by generation.

    ``capacity <= 0`` disables storage entirely (every ``get`` misses,
    every ``put`` is a no-op) — used where batch dedup is wanted but
    cross-call memoization is not.  ``thread_safe=True`` serializes
    ``get``/``put``/``bump_generation``/``clear`` behind a lock (see
    the module docstring); the default pays no locking cost.
    """

    __slots__ = (
        "capacity", "generation",
        "hits", "misses", "evictions", "stale_drops",
        "_data", "_stale", "_lock",
    )

    def __init__(self, capacity: int = 4096, thread_safe: bool = False):
        self.capacity = capacity
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_drops = 0
        self._data: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        # Count of stored entries stamped with an older generation.
        # Stale entries always sit at the LRU front: a lookup either
        # deletes one or refreshes a live entry to the back, so lazily
        # dropping from the front under pressure only touches them.
        self._stale = 0
        self._lock = threading.Lock() if thread_safe else None

    def __len__(self) -> int:
        """Number of *live* entries (stale ones are already dead — they
        can never be served again, only dropped)."""
        return len(self._data) - self._stale

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def bump_generation(self) -> int:
        """Invalidate every current entry; returns the new generation."""
        lock = self._lock
        if lock is None:
            self.generation += 1
            self._stale = len(self._data)
            return self.generation
        with lock:
            self.generation += 1
            self._stale = len(self._data)
            return self.generation

    def get(self, key: Hashable) -> Any:
        """The cached value for *key*, or :data:`MISS`.

        Entries stamped with an older generation are treated as absent
        and removed on the spot.
        """
        lock = self._lock
        if lock is None:
            return self._get(key)
        with lock:
            return self._get(key)

    def _get(self, key: Hashable) -> Any:
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return MISS
        gen, value = entry
        if gen != self.generation:
            del self._data[key]
            self._stale -= 1
            self.stale_drops += 1
            self.misses += 1
            return MISS
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value* under *key* at the current generation."""
        if self.capacity <= 0:
            return
        lock = self._lock
        if lock is None:
            self._put(key, value)
        else:
            with lock:
                self._put(key, value)

    def _put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            if data[key][0] != self.generation:
                self._stale -= 1  # overwritten with a fresh stamp
            data[key] = (self.generation, value)
            data.move_to_end(key)
            return
        data[key] = (self.generation, value)
        # Under pressure, drop dead (stale) entries first so they never
        # push out live answers, and attribute them to ``stale_drops``
        # — ``evictions`` counts only live entries lost to capacity.
        while len(data) > self.capacity and self._stale:
            data.popitem(last=False)
            self._stale -= 1
            self.stale_drops += 1
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def note_misses(self, n: int) -> None:
        """Bulk-count *n* lookups that bypassed storage (cache off).

        Keeps the stats surface identical whether or not storage is
        enabled; goes through the lock so a concurrent :meth:`get`
        cannot lose the update.
        """
        lock = self._lock
        if lock is None:
            self.misses += n
            return
        with lock:
            self.misses += n

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        lock = self._lock
        if lock is None:
            self._data.clear()
            self._stale = 0
            return
        with lock:
            self._data.clear()
            self._stale = 0
