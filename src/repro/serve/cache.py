"""LRU result cache with generation-based invalidation.

The serving layer memoizes boolean query answers keyed on
``(u, v, window, theta)``.  An answer is only valid for the graph state
it was computed against, so every entry is stamped with the cache's
*generation* at insert time.  Invalidation is O(1): a mutation bumps
the generation and stale entries are dropped lazily on their next
lookup (or pushed out by normal LRU pressure), so an edge insert never
pays a full-cache sweep on the hot path.

Counters (hits / misses / evictions / stale drops) are plain attributes
read by :class:`repro.serve.QueryEngine` for its observability surface.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Tuple

#: Sentinel distinguishing "not cached" from a cached ``False`` answer.
MISS = object()


class GenerationalLRUCache:
    """A bounded LRU mapping whose entries expire wholesale by generation.

    ``capacity <= 0`` disables storage entirely (every ``get`` misses,
    every ``put`` is a no-op) — used where batch dedup is wanted but
    cross-call memoization is not.
    """

    __slots__ = (
        "capacity", "generation",
        "hits", "misses", "evictions", "stale_drops",
        "_data",
    )

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_drops = 0
        self._data: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def bump_generation(self) -> int:
        """Invalidate every current entry; returns the new generation."""
        self.generation += 1
        return self.generation

    def get(self, key: Hashable) -> Any:
        """The cached value for *key*, or :data:`MISS`.

        Entries stamped with an older generation are treated as absent
        and removed on the spot.
        """
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return MISS
        gen, value = entry
        if gen != self.generation:
            del self._data[key]
            self.stale_drops += 1
            self.misses += 1
            return MISS
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value* under *key* at the current generation."""
        if self.capacity <= 0:
            return
        data = self._data
        if key in data:
            data[key] = (self.generation, value)
            data.move_to_end(key)
            return
        data[key] = (self.generation, value)
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()
