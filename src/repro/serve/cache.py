"""LRU result cache with generation-based invalidation.

The serving layer memoizes boolean query answers keyed on
``(u, v, window, theta)``.  An answer is only valid for the graph state
it was computed against, so every entry is stamped with the cache's
*generation* at insert time.  Invalidation is O(1): a mutation bumps
the generation and stale entries are dropped lazily on their next
lookup (or pushed out by normal LRU pressure), so an edge insert never
pays a full-cache sweep on the hot path.

Counters (hits / misses / evictions / stale drops) are plain attributes
read by :class:`repro.serve.QueryEngine` for its observability surface.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Tuple

#: Sentinel distinguishing "not cached" from a cached ``False`` answer.
MISS = object()


class GenerationalLRUCache:
    """A bounded LRU mapping whose entries expire wholesale by generation.

    ``capacity <= 0`` disables storage entirely (every ``get`` misses,
    every ``put`` is a no-op) — used where batch dedup is wanted but
    cross-call memoization is not.
    """

    __slots__ = (
        "capacity", "generation",
        "hits", "misses", "evictions", "stale_drops",
        "_data", "_stale",
    )

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_drops = 0
        self._data: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        # Count of stored entries stamped with an older generation.
        # Stale entries always sit at the LRU front: a lookup either
        # deletes one or refreshes a live entry to the back, so lazily
        # dropping from the front under pressure only touches them.
        self._stale = 0

    def __len__(self) -> int:
        """Number of *live* entries (stale ones are already dead — they
        can never be served again, only dropped)."""
        return len(self._data) - self._stale

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def bump_generation(self) -> int:
        """Invalidate every current entry; returns the new generation."""
        self.generation += 1
        self._stale = len(self._data)
        return self.generation

    def get(self, key: Hashable) -> Any:
        """The cached value for *key*, or :data:`MISS`.

        Entries stamped with an older generation are treated as absent
        and removed on the spot.
        """
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return MISS
        gen, value = entry
        if gen != self.generation:
            del self._data[key]
            self._stale -= 1
            self.stale_drops += 1
            self.misses += 1
            return MISS
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value* under *key* at the current generation."""
        if self.capacity <= 0:
            return
        data = self._data
        if key in data:
            if data[key][0] != self.generation:
                self._stale -= 1  # overwritten with a fresh stamp
            data[key] = (self.generation, value)
            data.move_to_end(key)
            return
        data[key] = (self.generation, value)
        # Under pressure, drop dead (stale) entries first so they never
        # push out live answers, and attribute them to ``stale_drops``
        # — ``evictions`` counts only live entries lost to capacity.
        while len(data) > self.capacity and self._stale:
            data.popitem(last=False)
            self._stale -= 1
            self.stale_drops += 1
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()
        self._stale = 0
