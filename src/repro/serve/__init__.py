"""Query serving: batched execution, result caching, benchmarking.

The :mod:`repro.core` layer answers one query at a time; this package
is the throughput layer above it:

* :class:`QueryEngine` — batched span/θ execution with amortized
  per-query overhead and an LRU result cache invalidated by the
  incremental index's mutation generation;
* :class:`EngineStats` — the engine's observability counters;
* :mod:`repro.serve.bench` — the seeded perf suite behind the
  ``repro bench`` CLI and the ``BENCH_*.json`` regression trajectory.
"""

from repro.serve.cache import MISS, GenerationalLRUCache
from repro.serve.engine import OUTCOMES, EngineStats, QueryEngine

__all__ = [
    "QueryEngine",
    "EngineStats",
    "GenerationalLRUCache",
    "MISS",
    "OUTCOMES",
]
