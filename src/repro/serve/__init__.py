"""Query serving: batched execution, result caching, the network tier.

The :mod:`repro.core` layer answers one query at a time; this package
is the throughput layer above it:

* :class:`QueryEngine` — batched span/θ execution with amortized
  per-query overhead and an LRU result cache invalidated by the
  incremental index's mutation generation;
* :class:`EngineStats` — the engine's observability counters;
* :class:`ParallelKernelExecutor` — splits oversized batches on
  source-run boundaries across a persistent thread pool (a win when
  the kernel releases the GIL, i.e. the ``native`` backend);
* :mod:`repro.serve.server` — the network front end: NDJSON over
  TCP/Unix sockets, micro-batch coalescing, admission control, index
  hot swap, and a pre-fork worker pool sharing one mmap'd index;
* :mod:`repro.serve.client` — the blocking reference client and the
  ``repro loadgen`` load generator;
* :mod:`repro.serve.bench` — the seeded perf suite behind the
  ``repro bench`` CLI and the ``BENCH_*.json`` regression trajectory.

The server/client modules import lazily (PEP 562) so that embedding
the engine never pays for asyncio.
"""

from repro.serve.cache import MISS, GenerationalLRUCache
from repro.serve.engine import (
    OUTCOMES,
    EngineStats,
    ParallelKernelExecutor,
    QueryEngine,
)

__all__ = [
    "QueryEngine",
    "EngineStats",
    "ParallelKernelExecutor",
    "GenerationalLRUCache",
    "MISS",
    "OUTCOMES",
    "ReachabilityServer",
    "ServerConfig",
    "IndexProvider",
    "ServeClient",
    "run_loadgen",
]

_LAZY = {
    "ReachabilityServer": "repro.serve.server",
    "ServerConfig": "repro.serve.server",
    "IndexProvider": "repro.serve.server",
    "ServeClient": "repro.serve.client",
    "run_loadgen": "repro.serve.client",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
