"""Temporal shape metrics of a graph.

The dataset stand-ins claim to reproduce two traits of real temporal
networks — degree skew and temporal burstiness (DESIGN.md).  This
module measures both so the claim is checkable, and gives analysts the
usual first-look numbers for any new dataset:

* :func:`timestamp_histogram` — edges per time bucket;
* :func:`inter_event_times` / :func:`burstiness` — the Goh–Barabási
  burstiness coefficient of the global event sequence
  (``B = (σ − μ) / (σ + μ)``; −1 periodic, 0 Poisson, → 1 bursty);
* :func:`degree_distribution` — temporal degree histogram;
* :func:`activity_span` — per-vertex first/last activity;
* :func:`temporal_density` — edges per vertex per time unit.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Tuple

from repro.errors import GraphError
from repro.graph.temporal_graph import TemporalGraph, Vertex


def timestamp_histogram(
    graph: TemporalGraph, buckets: int = 20
) -> List[Tuple[int, int, int]]:
    """Edge counts over ``buckets`` equal time slices.

    Returns ``(bucket_start, bucket_end, count)`` triplets covering the
    graph lifetime; empty graphs return an empty list.
    """
    if buckets < 1:
        raise GraphError(f"buckets must be >= 1, got {buckets}")
    if graph.min_time is None:
        return []
    lo, hi = graph.min_time, graph.max_time
    width = max(1, (hi - lo + 1 + buckets - 1) // buckets)
    counts: Counter = Counter()
    for _, _, t in graph.edges():
        counts[(t - lo) // width] += 1
    out = []
    b = 0
    while lo + b * width <= hi:
        start = lo + b * width
        end = min(hi, start + width - 1)
        out.append((start, end, counts.get(b, 0)))
        b += 1
    return out


def inter_event_times(graph: TemporalGraph) -> List[int]:
    """Gaps between consecutive events in the global timestamp sequence
    (multiplicities preserved, simultaneous events give zero gaps)."""
    times = sorted(t for _, _, t in graph.edges())
    return [b - a for a, b in zip(times, times[1:])]


def burstiness(graph: TemporalGraph) -> float:
    """Goh–Barabási burstiness ``B = (σ − μ)/(σ + μ)`` of inter-event
    times.  0 for fewer than two events or a degenerate sequence."""
    gaps = inter_event_times(graph)
    if len(gaps) < 2:
        return 0.0
    mean = sum(gaps) / len(gaps)
    var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    sigma = math.sqrt(var)
    if sigma + mean == 0:
        return 0.0
    return (sigma - mean) / (sigma + mean)


def degree_distribution(
    graph: TemporalGraph, direction: str = "total"
) -> Dict[int, int]:
    """Histogram ``degree -> vertex count`` of temporal degrees.

    ``direction`` is ``"out"``, ``"in"`` or ``"total"``.
    """
    if direction not in ("out", "in", "total"):
        raise GraphError(
            f"direction must be 'out', 'in' or 'total', got {direction!r}"
        )
    counts: Counter = Counter()
    for v in range(graph.num_vertices):
        out_deg = len(graph.out_adj(v))
        in_deg = len(graph.in_adj(v))
        degree = {"out": out_deg, "in": in_deg, "total": out_deg + in_deg}[
            direction
        ]
        counts[degree] += 1
    return dict(counts)


def activity_span(graph: TemporalGraph) -> Dict[Vertex, Tuple[int, int]]:
    """Per-vertex ``(first, last)`` timestamps over incident edges.

    Vertices with no incident edges are omitted.
    """
    spans: Dict[int, Tuple[int, int]] = {}
    for u, v, t in graph.edges():
        for label in (u, v):
            current = spans.get(label)
            if current is None:
                spans[label] = (t, t)
            else:
                spans[label] = (min(current[0], t), max(current[1], t))
    return spans


def temporal_density(graph: TemporalGraph) -> float:
    """Edges per vertex per lifetime unit — how "busy" the graph is.

    0 for empty graphs.
    """
    if graph.num_vertices == 0 or graph.lifetime == 0:
        return 0.0
    return graph.num_edges / (graph.num_vertices * graph.lifetime)
