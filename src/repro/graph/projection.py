"""Projected static graphs and brute-force reachability oracles.

Definition 1 of the paper reduces span-reachability to plain
reachability in the *projected graph* of an interval: the static graph
containing exactly the edges whose timestamps fall inside the interval.
This module materialises projected graphs and provides exhaustive
BFS-based reachability — the ground truth the whole test suite checks
the index against.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Set, Tuple

from repro.core.intervals import IntervalLike, as_interval
from repro.graph.temporal_graph import TemporalGraph, Vertex


class StaticGraph:
    """A plain static digraph over the vertex set of a temporal graph.

    Vertices are the *internal indices* of the originating
    :class:`TemporalGraph`; adjacency lists are deduplicated.
    """

    __slots__ = ("num_vertices", "out", "in_", "directed")

    def __init__(self, num_vertices: int, directed: bool = True):
        self.num_vertices = num_vertices
        self.directed = directed
        self.out: List[Set[int]] = [set() for _ in range(num_vertices)]
        self.in_: List[Set[int]] = [set() for _ in range(num_vertices)]

    def add_edge(self, u: int, v: int) -> None:
        self.out[u].add(v)
        self.in_[v].add(u)
        if not self.directed:
            self.out[v].add(u)
            self.in_[u].add(v)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed arcs (pairs counted once each way)."""
        return sum(len(s) for s in self.out)

    def reachable_from(self, source: int) -> Set[int]:
        """All vertices reachable from *source* (including itself)."""
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self.out[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def reaches(self, source: int, target: int) -> bool:
        """BFS reachability test from *source* to *target*."""
        if source == target:
            return True
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self.out[u]:
                if v == target:
                    return True
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return False


def project(graph: TemporalGraph, interval: IntervalLike) -> StaticGraph:
    """The projected static graph :math:`\\mathcal{G}([t_s, t_e])`.

    Keeps every vertex and exactly the edges whose timestamp lies in the
    interval (Section II of the paper).
    """
    window = as_interval(interval)
    projected = StaticGraph(graph.num_vertices, directed=graph.directed)
    for ui in range(graph.num_vertices):
        for vi, t in graph.out_adj(ui):
            if window.start <= t <= window.end:
                projected.out[ui].add(vi)
                projected.in_[vi].add(ui)
    return projected


def span_reaches_bruteforce(
    graph: TemporalGraph, u: Vertex, v: Vertex, interval: IntervalLike
) -> bool:
    """Ground-truth span-reachability by explicit projection + BFS.

    Exponentially simpler than the index and deliberately unoptimized:
    this is the oracle the rest of the library is validated against.
    """
    ui = graph.index_of(u)
    vi = graph.index_of(v)
    if ui == vi:
        return True
    return project(graph, interval).reaches(ui, vi)


def theta_reaches_bruteforce(
    graph: TemporalGraph, u: Vertex, v: Vertex, interval: IntervalLike, theta: int
) -> bool:
    """Ground-truth θ-reachability: try every θ-length window.

    Follows Definition 2 literally — a window ``[t, t + θ - 1]`` slides
    over the query interval and each projected graph is searched.
    """
    window = as_interval(interval)
    if theta < 1:
        raise ValueError(f"theta must be a positive window length, got {theta}")
    if window.length < theta:
        raise ValueError(
            f"query interval {window} is shorter than theta={theta}"
        )
    ui = graph.index_of(u)
    vi = graph.index_of(v)
    if ui == vi:
        return True
    for start in range(window.start, window.end - theta + 2):
        if project(graph, (start, start + theta - 1)).reaches(ui, vi):
            return True
    return False


def reachable_set(
    graph: TemporalGraph, u: Vertex, interval: IntervalLike
) -> Set[Vertex]:
    """Labels of every vertex *u* span-reaches within *interval*."""
    ui = graph.index_of(u)
    reached = project(graph, interval).reachable_from(ui)
    return {graph.label_of(i) for i in reached}


def connected_pairs(
    graph: TemporalGraph, interval: IntervalLike
) -> Iterable[Tuple[Vertex, Vertex]]:
    """Every ordered pair ``(u, v)`` with ``u ≠ v`` span-connected in
    *interval* — exhaustive; intended for small test graphs only."""
    projected = project(graph, interval)
    for ui in range(graph.num_vertices):
        u = graph.label_of(ui)
        for vi in projected.reachable_from(ui):
            if vi != ui:
                yield (u, graph.label_of(vi))
