"""Vertex and edge sampling (the paper's scalability protocol, Fig. 8).

Section VI-B-4: *"we vary the graph size and graph density by randomly
sampling vertices and edges from 20% to 100%.  When sampling vertices,
we derive the induced subgraph of the sampled vertices, and when
sampling edges, we select the incident vertices of the edges as the
vertex set."*  Both samplers implement exactly that.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import GraphError
from repro.graph.temporal_graph import TemporalGraph


def _check_ratio(ratio: float) -> None:
    if not 0.0 < ratio <= 1.0:
        raise GraphError(f"sampling ratio must be in (0, 1], got {ratio}")


def sample_vertices(
    graph: TemporalGraph, ratio: float, seed: Optional[int] = None
) -> TemporalGraph:
    """Induced subgraph on a uniform ``ratio`` fraction of the vertices."""
    _check_ratio(ratio)
    if ratio == 1.0:
        return graph.copy()
    rng = random.Random(seed)
    labels = list(graph.vertices())
    keep_count = max(1, int(round(len(labels) * ratio)))
    kept = set(rng.sample(labels, keep_count))
    sampled = TemporalGraph(directed=graph.directed)
    for label in labels:
        if label in kept:
            sampled.add_vertex(label)
    for u, v, t in graph.edges():
        if u in kept and v in kept:
            sampled.add_edge(u, v, t)
    return sampled.freeze()


def sample_edges(
    graph: TemporalGraph, ratio: float, seed: Optional[int] = None
) -> TemporalGraph:
    """Uniform ``ratio`` fraction of the edges; vertices are exactly the
    endpoints of the kept edges (the paper's rule)."""
    _check_ratio(ratio)
    if ratio == 1.0:
        return graph.copy()
    rng = random.Random(seed)
    edges = list(graph.edges())
    keep_count = max(1, int(round(len(edges) * ratio)))
    kept = rng.sample(edges, keep_count)
    sampled = TemporalGraph(directed=graph.directed)
    for u, v, t in kept:
        sampled.add_edge(u, v, t)
    return sampled.freeze()
