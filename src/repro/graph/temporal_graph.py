"""The temporal graph store.

A temporal graph :math:`\\mathcal{G}(\\mathcal{V}, \\mathcal{E})` is a
multigraph whose edges are triplets ``(u, v, t)`` with an integer
timestamp ``t`` (paper, Section II).  This module provides
:class:`TemporalGraph`, the substrate every algorithm in the library
runs on.

Design notes
------------

* **Dense internal ids.**  Vertices may be arbitrary hashable labels;
  internally they are remapped to ``0..n-1`` so the core algorithms can
  use flat lists instead of dictionaries.  Algorithms in
  :mod:`repro.core` operate on internal indices; the public facade
  (:class:`repro.core.index.TILLIndex`) translates at the boundary.
* **Freezing.**  Index construction needs per-vertex adjacency sorted by
  timestamp and per-vertex sorted timestamp arrays (for the Lemma 9/10
  query prefilters).  :meth:`TemporalGraph.freeze` computes these once;
  afterwards the graph rejects mutation.  All read paths work on both
  frozen and unfrozen graphs.
* **Multi-edges and self-loops** are allowed, exactly as in the paper's
  datasets; parallel edges with equal timestamps are kept (they count
  toward ``m`` just as repeated interactions do in KONECT dumps).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import FrozenGraphError, GraphError, UnknownVertexError

Vertex = Hashable
TemporalEdge = Tuple[Vertex, Vertex, int]


class TemporalGraph:
    """A directed or undirected temporal multigraph.

    Parameters
    ----------
    directed:
        When ``False`` every edge is stored in both directions and the
        in/out distinction collapses (``in_neighbors == out_neighbors``).

    Examples
    --------
    >>> g = TemporalGraph(directed=True)
    >>> g.add_edge("a", "b", 3)
    >>> g.add_edge("b", "c", 5)
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.out_neighbors("a"))
    [('b', 3)]
    """

    def __init__(self, directed: bool = True):
        self.directed = bool(directed)
        self._label_of: List[Vertex] = []
        self._index_of: Dict[Vertex, int] = {}
        self._out: List[List[Tuple[int, int]]] = []  # per-vertex [(nbr, t)]
        self._in: List[List[Tuple[int, int]]] = []
        self._num_edges = 0
        self._min_time: Optional[int] = None
        self._max_time: Optional[int] = None
        self._frozen = False
        # Populated by freeze(): per-vertex sorted timestamp arrays used
        # by the Lemma 9/10 prefilters.
        self._out_times: List[List[int]] = []
        self._in_times: List[List[int]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[TemporalEdge], directed: bool = True, freeze: bool = True
    ) -> "TemporalGraph":
        """Build a graph from an iterable of ``(u, v, t)`` triplets.

        The graph is frozen by default since the overwhelmingly common
        pattern is build-then-index.
        """
        graph = cls(directed=directed)
        for u, v, t in edges:
            graph.add_edge(u, v, t)
        if freeze:
            graph.freeze()
        return graph

    def add_vertex(self, label: Vertex) -> int:
        """Ensure *label* exists; return its internal index."""
        if self._frozen:
            raise FrozenGraphError("cannot add vertices to a frozen graph")
        idx = self._index_of.get(label)
        if idx is None:
            idx = len(self._label_of)
            self._index_of[label] = idx
            self._label_of.append(label)
            self._out.append([])
            self._in.append([])
        return idx

    def add_edge(self, u: Vertex, v: Vertex, t: int) -> None:
        """Add the temporal edge ``(u, v, t)``.

        For undirected graphs the edge is registered in both adjacency
        directions but counted once.
        """
        if self._frozen:
            raise FrozenGraphError("cannot add edges to a frozen graph")
        if not isinstance(t, int):
            raise GraphError(f"timestamp must be an integer, got {t!r}")
        ui = self.add_vertex(u)
        vi = self.add_vertex(v)
        self._out[ui].append((vi, t))
        self._in[vi].append((ui, t))
        if not self.directed and ui != vi:
            self._out[vi].append((ui, t))
            self._in[ui].append((vi, t))
        self._num_edges += 1
        if self._min_time is None or t < self._min_time:
            self._min_time = t
        if self._max_time is None or t > self._max_time:
            self._max_time = t

    def freeze(self) -> "TemporalGraph":
        """Sort adjacency by timestamp and build prefilter arrays.

        Idempotent.  Returns ``self`` for chaining.
        """
        if self._frozen:
            return self
        for adj in (self._out, self._in):
            for lst in adj:
                lst.sort(key=lambda pair: pair[1])
        self._out_times = [[t for _, t in lst] for lst in self._out]
        self._in_times = [[t for _, t in lst] for lst in self._in]
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._label_of)

    @property
    def num_edges(self) -> int:
        """Number of temporal edges ``m`` (undirected edges count once)."""
        return self._num_edges

    @property
    def min_time(self) -> Optional[int]:
        """Smallest edge timestamp, ``None`` for an edgeless graph."""
        return self._min_time

    @property
    def max_time(self) -> Optional[int]:
        """Largest edge timestamp, ``None`` for an edgeless graph."""
        return self._max_time

    @property
    def lifetime(self) -> int:
        """The paper's :math:`\\vartheta_{\\mathcal{G}}`: number of atomic
        time units between the smallest and the largest timestamp."""
        if self._min_time is None:
            return 0
        return self._max_time - self._min_time + 1

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertex labels in insertion order."""
        return iter(self._label_of)

    def edges(self) -> Iterator[TemporalEdge]:
        """Iterate over temporal edges as ``(u, v, t)`` label triplets.

        For undirected graphs each edge is yielded once, oriented from
        the endpoint with the smaller internal index.
        """
        if self.directed:
            for ui, lst in enumerate(self._out):
                u = self._label_of[ui]
                for vi, t in lst:
                    yield (u, self._label_of[vi], t)
            return
        # Undirected: _out holds both orientations; emit each underlying
        # edge once by keeping (u <= v by index) plus all self-loops.
        for ui, lst in enumerate(self._out):
            u = self._label_of[ui]
            for vi, t in lst:
                if ui <= vi:
                    yield (u, self._label_of[vi], t)

    def __contains__(self, label: Vertex) -> bool:
        return label in self._index_of

    def __len__(self) -> int:
        return self.num_vertices

    def index_of(self, label: Vertex) -> int:
        """Internal dense index of *label*; raises :class:`UnknownVertexError`."""
        try:
            return self._index_of[label]
        except KeyError:
            raise UnknownVertexError(label) from None

    def label_of(self, index: int) -> Vertex:
        """Vertex label for internal *index*."""
        try:
            return self._label_of[index]
        except IndexError:
            raise UnknownVertexError(index) from None

    # ------------------------------------------------------------------
    # neighborhoods (label-level API)
    # ------------------------------------------------------------------

    def out_neighbors(self, u: Vertex) -> List[Tuple[Vertex, int]]:
        """``N_out(u)``: list of ``(neighbor, t)`` pairs."""
        ui = self.index_of(u)
        return [(self._label_of[vi], t) for vi, t in self._out[ui]]

    def in_neighbors(self, u: Vertex) -> List[Tuple[Vertex, int]]:
        """``N_in(u)``: list of ``(neighbor, t)`` pairs."""
        ui = self.index_of(u)
        return [(self._label_of[vi], t) for vi, t in self._in[ui]]

    def out_degree(self, u: Vertex) -> int:
        """``deg_out(u)`` = number of outgoing temporal edges."""
        return len(self._out[self.index_of(u)])

    def in_degree(self, u: Vertex) -> int:
        """``deg_in(u)`` = number of incoming temporal edges."""
        return len(self._in[self.index_of(u)])

    # ------------------------------------------------------------------
    # index-level API used by the core algorithms
    # ------------------------------------------------------------------

    def out_adj(self, ui: int) -> Sequence[Tuple[int, int]]:
        """Outgoing adjacency of internal vertex *ui* as ``(vi, t)`` pairs."""
        return self._out[ui]

    def in_adj(self, ui: int) -> Sequence[Tuple[int, int]]:
        """Incoming adjacency of internal vertex *ui* as ``(vi, t)`` pairs."""
        return self._in[ui]

    def adj(self, ui: int, direction: str) -> Sequence[Tuple[int, int]]:
        """Adjacency of *ui* in ``"out"`` or ``"in"`` direction."""
        if direction == "out":
            return self._out[ui]
        if direction == "in":
            return self._in[ui]
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")

    def has_out_edge_in(self, ui: int, start: int, end: int) -> bool:
        """Lemma 9 prefilter: does *ui* have an outgoing edge whose
        timestamp falls in ``[start, end]``?  Requires a frozen graph."""
        times = self._out_times[ui]
        i = bisect_left(times, start)
        return i < len(times) and times[i] <= end

    def has_in_edge_in(self, ui: int, start: int, end: int) -> bool:
        """Lemma 10 prefilter: does *ui* have an incoming edge whose
        timestamp falls in ``[start, end]``?  Requires a frozen graph."""
        times = self._in_times[ui]
        i = bisect_left(times, start)
        return i < len(times) and times[i] <= end

    def out_adj_window(self, ui: int, start: int, end: int) -> Sequence[Tuple[int, int]]:
        """Outgoing edges of *ui* with timestamps in ``[start, end]``.

        On a frozen graph this is a slice of the time-sorted adjacency,
        located with two binary searches — the workhorse of the online
        BFS baseline.
        """
        adj = self._out[ui]
        if self._frozen:
            times = self._out_times[ui]
            return adj[bisect_left(times, start):bisect_right(times, end)]
        return [pair for pair in adj if start <= pair[1] <= end]

    def in_adj_window(self, ui: int, start: int, end: int) -> Sequence[Tuple[int, int]]:
        """Incoming edges of *ui* with timestamps in ``[start, end]``."""
        adj = self._in[ui]
        if self._frozen:
            times = self._in_times[ui]
            return adj[bisect_left(times, start):bisect_right(times, end)]
        return [pair for pair in adj if start <= pair[1] <= end]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def copy(self, directed: Optional[bool] = None, freeze: bool = True) -> "TemporalGraph":
        """A fresh graph with the same edges.

        ``directed`` may be overridden (e.g. to reinterpret an
        undirected graph as directed); edges are re-added under the new
        interpretation.
        """
        target = TemporalGraph(directed=self.directed if directed is None else directed)
        for u in self._label_of:  # preserve isolated vertices and id order
            target.add_vertex(u)
        for u, v, t in self.edges():
            target.add_edge(u, v, t)
        if freeze:
            target.freeze()
        return target

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"TemporalGraph({kind}, n={self.num_vertices}, m={self.num_edges}, "
            f"lifetime={self.lifetime})"
        )
