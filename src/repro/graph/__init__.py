"""Temporal graph substrate: storage, projection, I/O, generation."""

from repro.graph.projection import (
    StaticGraph,
    project,
    span_reaches_bruteforce,
    theta_reaches_bruteforce,
)
from repro.graph.statistics import GraphStats, graph_stats
from repro.graph.temporal_graph import TemporalGraph

__all__ = [
    "TemporalGraph",
    "StaticGraph",
    "project",
    "span_reaches_bruteforce",
    "theta_reaches_bruteforce",
    "GraphStats",
    "graph_stats",
]
