"""Descriptive statistics of temporal graphs (the Table II columns).

The paper's Table II reports, per dataset: directed/undirected (column
``M``), the number of vertices ``n``, the number of temporal edges
``m``, and :math:`\\vartheta_{\\mathcal{G}}` — the number of atomic time
units between the smallest and largest timestamp.  :func:`graph_stats`
computes those plus a handful of shape descriptors used by the dataset
registry tests (degree skew, static edge count, timestamp spread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary of one temporal graph (Table II row + shape extras)."""

    name: str
    directed: bool
    num_vertices: int
    num_edges: int
    lifetime: int
    num_static_edges: int
    num_timestamps: int
    max_out_degree: int
    max_in_degree: int
    mean_degree: float
    degree_gini: float

    @property
    def kind(self) -> str:
        """Table II's ``M`` column: ``"D"`` directed, ``"U"`` undirected."""
        return "D" if self.directed else "U"

    def as_row(self) -> Dict[str, object]:
        """The Table II view of this graph."""
        return {
            "Dataset": self.name,
            "M": self.kind,
            "n": self.num_vertices,
            "m": self.num_edges,
            "theta_G": self.lifetime,
        }


def _gini(values) -> float:
    """Gini coefficient of a non-negative sequence (0 = uniform degrees,
    → 1 = extremely hub-dominated); used to validate generator skew."""
    values = sorted(values)
    n = len(values)
    total = sum(values)
    if n == 0 or total == 0:
        return 0.0
    cum = 0.0
    weighted = 0.0
    for i, v in enumerate(values, 1):
        weighted += i * v
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def graph_stats(graph: TemporalGraph, name: str = "") -> GraphStats:
    """Compute the full statistics record for *graph*."""
    n = graph.num_vertices
    static_edges = set()
    timestamps = set()
    for u, v, t in graph.edges():
        static_edges.add((u, v) if graph.directed else frozenset((u, v)))
        timestamps.add(t)
    out_degrees = [len(graph.out_adj(i)) for i in range(n)]
    in_degrees = [len(graph.in_adj(i)) for i in range(n)]
    total_degree = [o + i for o, i in zip(out_degrees, in_degrees)]
    return GraphStats(
        name=name,
        directed=graph.directed,
        num_vertices=n,
        num_edges=graph.num_edges,
        lifetime=graph.lifetime,
        num_static_edges=len(static_edges),
        num_timestamps=len(timestamps),
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max(in_degrees, default=0),
        mean_degree=(sum(total_degree) / n) if n else 0.0,
        degree_gini=_gini(total_degree),
    )
