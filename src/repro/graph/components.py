"""Span-connectivity structure of a time window.

Group-level analyses (the paper's event-cohort and Δ-clique motivation,
Section I) need more than pairwise queries: they ask for the *partition*
of the network into mutually reachable sets within a window.  This
module computes it over the projected graph:

* :func:`weakly_connected_components` — components ignoring direction
  (the natural notion for undirected graphs, and the usual "cohort"
  semantics for directed interaction data);
* :func:`strongly_connected_components` — mutual span-reachability in
  directed graphs (Tarjan, iterative);
* :func:`largest_component_fraction` — a window-activity summary used
  by the event-detection example.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.core.intervals import IntervalLike
from repro.graph.projection import project
from repro.graph.temporal_graph import TemporalGraph, Vertex


def weakly_connected_components(
    graph: TemporalGraph, interval: IntervalLike
) -> List[Set[Vertex]]:
    """Partition of the vertices into weak components of the projected
    graph.  Isolated vertices form singletons.  Components are returned
    largest first (ties broken arbitrarily)."""
    projected = project(graph, interval)
    n = graph.num_vertices
    seen = [False] * n
    components: List[Set[Vertex]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        component = {start}
        queue = deque([start])
        while queue:
            x = queue.popleft()
            for y in projected.out[x] | projected.in_[x]:
                if not seen[y]:
                    seen[y] = True
                    component.add(y)
                    queue.append(y)
        components.append({graph.label_of(i) for i in component})
    components.sort(key=len, reverse=True)
    return components


def strongly_connected_components(
    graph: TemporalGraph, interval: IntervalLike
) -> List[Set[Vertex]]:
    """Tarjan's SCC over the projected graph (iterative, no recursion
    limits).  For undirected graphs this coincides with the weak
    components.  Largest first."""
    projected = project(graph, interval)
    n = graph.num_vertices
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack = [False] * n
    stack: List[int] = []
    components: List[Set[Vertex]] = []
    counter = 0

    for root in range(n):
        if root in index_of:
            continue
        # Explicit DFS stack of (vertex, iterator over its successors).
        work = [(root, iter(projected.out[root]))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            x, successors = work[-1]
            advanced = False
            for y in successors:
                if y not in index_of:
                    index_of[y] = low[y] = counter
                    counter += 1
                    stack.append(y)
                    on_stack[y] = True
                    work.append((y, iter(projected.out[y])))
                    advanced = True
                    break
                if on_stack[y]:
                    low[x] = min(low[x], index_of[y])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[x])
            if low[x] == index_of[x]:
                component = set()
                while True:
                    y = stack.pop()
                    on_stack[y] = False
                    component.add(graph.label_of(y))
                    if y == x:
                        break
                components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component_fraction(
    graph: TemporalGraph, interval: IntervalLike
) -> float:
    """Size of the largest weak component divided by ``n`` — a cheap
    activity signal: event windows produce a dominant component."""
    if graph.num_vertices == 0:
        return 0.0
    components = weakly_connected_components(graph, interval)
    return len(components[0]) / graph.num_vertices
