"""Structure- and time-transformations of temporal graphs.

Dataset preparation utilities: real dumps carry Unix-epoch timestamps
(ϑ_G in the billions), while experiments want compact atomic units —
:func:`normalize_timestamps` and :func:`coarsen_timestamps` perform the
standard rescaling.  The remaining transforms (reverse, undirected
view, induced subgraph, relabel) are the usual graph plumbing.

Every transform returns a **new frozen graph**; inputs are never
mutated.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from repro.errors import GraphError
from repro.graph.temporal_graph import TemporalGraph, Vertex


def normalize_timestamps(graph: TemporalGraph) -> TemporalGraph:
    """Shift timestamps so the earliest edge is at time 1.

    Lifetime (ϑ_G) is preserved; only the origin moves.
    """
    if graph.min_time is None:
        return graph.copy()
    shift = 1 - graph.min_time
    out = TemporalGraph(directed=graph.directed)
    for label in graph.vertices():
        out.add_vertex(label)
    for u, v, t in graph.edges():
        out.add_edge(u, v, t + shift)
    return out.freeze()


def coarsen_timestamps(graph: TemporalGraph, unit: int) -> TemporalGraph:
    """Bucket timestamps into atomic units of width *unit*.

    E.g. ``unit=86400`` converts Unix-second data to days.  The result
    is additionally normalized to start at time 1 so that ϑ_G equals
    the number of buckets spanned.
    """
    if unit < 1:
        raise GraphError(f"coarsening unit must be >= 1, got {unit}")
    if graph.min_time is None:
        return graph.copy()
    origin = graph.min_time
    out = TemporalGraph(directed=graph.directed)
    for label in graph.vertices():
        out.add_vertex(label)
    for u, v, t in graph.edges():
        out.add_edge(u, v, (t - origin) // unit + 1)
    return out.freeze()


def reverse(graph: TemporalGraph) -> TemporalGraph:
    """Flip every edge direction (undirected graphs copy unchanged).

    ``u`` span-reaches ``v`` in the reverse graph iff ``v`` span-reaches
    ``u`` in the original — handy for validating in/out label symmetry.
    """
    out = TemporalGraph(directed=graph.directed)
    for label in graph.vertices():
        out.add_vertex(label)
    for u, v, t in graph.edges():
        if graph.directed:
            out.add_edge(v, u, t)
        else:
            out.add_edge(u, v, t)
    return out.freeze()


def to_undirected(graph: TemporalGraph) -> TemporalGraph:
    """Forget edge directions (each temporal edge kept once)."""
    out = TemporalGraph(directed=False)
    for label in graph.vertices():
        out.add_vertex(label)
    for u, v, t in graph.edges():
        out.add_edge(u, v, t)
    return out.freeze()


def induced_subgraph(graph: TemporalGraph, keep: Iterable[Vertex]) -> TemporalGraph:
    """Subgraph on the vertex set *keep* (edges with both endpoints kept)."""
    kept = set(keep)
    out = TemporalGraph(directed=graph.directed)
    for label in graph.vertices():
        if label in kept:
            out.add_vertex(label)
    for u, v, t in graph.edges():
        if u in kept and v in kept:
            out.add_edge(u, v, t)
    return out.freeze()


def time_slice(graph: TemporalGraph, start: int, end: int) -> TemporalGraph:
    """The temporal subgraph of edges with timestamps in ``[start, end]``.

    Unlike :func:`repro.graph.projection.project` this keeps the result
    *temporal* (timestamps preserved), so it composes with indexing.
    """
    if start > end:
        raise GraphError(f"empty time slice [{start}, {end}]")
    out = TemporalGraph(directed=graph.directed)
    for label in graph.vertices():
        out.add_vertex(label)
    for u, v, t in graph.edges():
        if start <= t <= end:
            out.add_edge(u, v, t)
    return out.freeze()


def relabel(
    graph: TemporalGraph, mapping: Optional[Dict[Vertex, Hashable]] = None
) -> TemporalGraph:
    """Rename vertices.

    With ``mapping=None`` vertices are renamed to their dense internal
    indices ``0..n-1`` — the canonical form used before serialization
    of graphs with exotic labels.  A partial mapping raises
    :class:`GraphError` (silent partial renames corrupt datasets).
    """
    if mapping is None:
        mapping = {label: i for i, label in enumerate(graph.vertices())}
    else:
        missing = [v for v in graph.vertices() if v not in mapping]
        if missing:
            raise GraphError(
                f"relabel mapping misses {len(missing)} vertices, "
                f"e.g. {missing[0]!r}"
            )
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabel mapping is not injective")
    out = TemporalGraph(directed=graph.directed)
    for label in graph.vertices():
        out.add_vertex(mapping[label])
    for u, v, t in graph.edges():
        out.add_edge(mapping[u], mapping[v], t)
    return out.freeze()
