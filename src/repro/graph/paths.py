"""Witness paths for reachability answers.

A boolean answer is often not enough operationally: the transaction-
monitoring application needs the *chain of transfers*, the PPI
application the mediating proteins.  This module extracts explicit
witness paths from the projected graph:

* :func:`span_path` — a concrete temporal-edge path proving
  ``u ⇝[ts,te] v``, or ``None``;
* :func:`theta_path` — the earliest θ-length window together with its
  witness path, or ``None``;
* :func:`shortest_span_path` is an alias of :func:`span_path` (BFS
  already minimizes hop count).

Paths are lists of ``(u, v, t)`` temporal edges with every ``t`` inside
the window.  For undirected graphs edges are reported in traversal
orientation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.intervals import Interval, IntervalLike, as_interval
from repro.graph.temporal_graph import TemporalGraph, TemporalEdge, Vertex


def span_path(
    graph: TemporalGraph, u: Vertex, v: Vertex, interval: IntervalLike
) -> Optional[List[TemporalEdge]]:
    """A hop-minimal temporal-edge path witnessing ``u ⇝ v`` in *interval*.

    Returns ``None`` when *u* does not span-reach *v*; returns ``[]``
    for ``u == v`` (the trivial witness).  BFS over the window-sliced
    adjacency guarantees the fewest hops among all witnesses.
    """
    window = as_interval(interval)
    if not graph.frozen:
        graph.freeze()
    ui = graph.index_of(u)
    vi = graph.index_of(v)
    if ui == vi:
        return []
    # parent[x] = (predecessor, timestamp of the edge used to reach x)
    parent: Dict[int, Tuple[int, int]] = {ui: (ui, 0)}
    queue = deque([ui])
    found = False
    while queue and not found:
        x = queue.popleft()
        for y, t in graph.out_adj_window(x, window.start, window.end):
            if y not in parent:
                parent[y] = (x, t)
                if y == vi:
                    found = True
                    break
                queue.append(y)
    if not found:
        return None
    edges: List[TemporalEdge] = []
    node = vi
    while node != ui:
        pred, t = parent[node]
        edges.append((graph.label_of(pred), graph.label_of(node), t))
        node = pred
    edges.reverse()
    return edges


#: BFS already minimizes hops; exported under the explicit name too.
shortest_span_path = span_path


def theta_path(
    graph: TemporalGraph,
    u: Vertex,
    v: Vertex,
    interval: IntervalLike,
    theta: int,
) -> Optional[Tuple[Interval, List[TemporalEdge]]]:
    """The earliest θ-length window of *interval* witnessing
    ``u θ-reaches v``, with its path.

    Returns ``(window, edges)`` for the leftmost feasible window, or
    ``None``.  Raises ``ValueError`` on a malformed θ (non-positive or
    longer than the interval).
    """
    window = as_interval(interval)
    if theta < 1:
        raise ValueError(f"theta must be a positive window length, got {theta}")
    if window.length < theta:
        raise ValueError(
            f"query interval {window} is shorter than theta={theta}"
        )
    if graph.index_of(u) == graph.index_of(v):
        return (Interval(window.start, window.start + theta - 1), [])
    for start in range(window.start, window.end - theta + 2):
        sub = Interval(start, start + theta - 1)
        path = span_path(graph, u, v, sub)
        if path is not None:
            return (sub, path)
    return None


def path_is_valid_witness(
    graph: TemporalGraph,
    u: Vertex,
    v: Vertex,
    interval: IntervalLike,
    edges: List[TemporalEdge],
) -> bool:
    """Check that *edges* really proves ``u ⇝ v`` in *interval*.

    Used by tests and by downstream consumers that receive paths from
    untrusted serialization.  Validates chaining, window membership and
    edge existence (orientation-insensitively for undirected graphs).
    """
    window = as_interval(interval)
    if graph.index_of(u) == graph.index_of(v):
        return edges == []
    if not edges:
        return False
    if edges[0][0] != u or edges[-1][1] != v:
        return False
    current = u
    for a, b, t in edges:
        if a != current or not window.contains_time(t):
            return False
        hops = {(nbr, ts) for nbr, ts in graph.out_neighbors(a)}
        if (b, t) not in hops:
            return False
        current = b
    return True
