"""Reading and writing temporal graphs.

Supported formats
-----------------

``edgelist``
    Whitespace-separated ``u v t`` per line — the layout of the SNAP
    temporal collections (e.g. ``CollegeMsg.txt``).  Lines starting
    with ``#`` are comments.  Vertex tokens that parse as integers are
    stored as ints, otherwise as strings.

``konect``
    The KONECT ``out.<name>`` layout: ``u v [weight [t]]`` with ``%``
    comment lines.  When a weight column is present the timestamp is
    the fourth column; two-column lines get timestamp ``1``.

``json``
    ``{"directed": bool, "edges": [[u, v, t], ...], "vertices": [...]}``
    — lossless for JSON-representable vertex labels and convenient for
    small fixtures.

``csv``
    ``source,target,timestamp`` with a header row — the layout most
    spreadsheet/pandas exports produce.  Extra columns are ignored;
    the three required columns are located by header name.

Any path ending in ``.gz`` is transparently (de)compressed.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Optional, Union

from repro.errors import DatasetError
from repro.graph.temporal_graph import TemporalGraph

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _parse_vertex(token: str):
    """Integers stay integers so ids round-trip compactly."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edgelist(
    path: PathLike,
    directed: bool = True,
    comment: str = "#",
    freeze: bool = True,
) -> TemporalGraph:
    """Read a SNAP-style ``u v t`` edge list."""
    graph = TemporalGraph(directed=directed)
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise DatasetError(
                    f"{path}:{lineno}: expected 'u v t', got {line!r}"
                )
            u, v = _parse_vertex(parts[0]), _parse_vertex(parts[1])
            try:
                t = int(parts[2])
            except ValueError:
                raise DatasetError(
                    f"{path}:{lineno}: timestamp is not an integer: {parts[2]!r}"
                ) from None
            graph.add_edge(u, v, t)
    if freeze:
        graph.freeze()
    return graph


def write_edgelist(graph: TemporalGraph, path: PathLike) -> None:
    """Write a graph as a SNAP-style ``u v t`` edge list."""
    with _open_text(path, "w") as fh:
        fh.write(f"# directed={graph.directed} n={graph.num_vertices} "
                 f"m={graph.num_edges}\n")
        for u, v, t in graph.edges():
            fh.write(f"{u} {v} {t}\n")


def read_konect(
    path: PathLike, directed: bool = True, freeze: bool = True
) -> TemporalGraph:
    """Read a KONECT ``out.*`` file (``u v [weight [timestamp]]``)."""
    graph = TemporalGraph(directed=directed)
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{lineno}: expected at least 'u v', got {line!r}"
                )
            u, v = _parse_vertex(parts[0]), _parse_vertex(parts[1])
            if len(parts) >= 4:
                raw_t = parts[3]
            elif len(parts) == 3:
                raw_t = parts[2]
            else:
                raw_t = "1"
            try:
                # KONECT sometimes stores float epochs; truncate.
                t = int(float(raw_t))
            except ValueError:
                raise DatasetError(
                    f"{path}:{lineno}: timestamp is not numeric: {raw_t!r}"
                ) from None
            graph.add_edge(u, v, t)
    if freeze:
        graph.freeze()
    return graph


def read_json(path: PathLike, freeze: bool = True) -> TemporalGraph:
    """Read the library's JSON graph format."""
    with _open_text(path, "r") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{path}: invalid JSON: {exc}") from exc
    try:
        directed = bool(payload["directed"])
        edges = payload["edges"]
    except (KeyError, TypeError) as exc:
        raise DatasetError(
            f"{path}: JSON graph needs 'directed' and 'edges' keys"
        ) from exc
    graph = TemporalGraph(directed=directed)
    for label in payload.get("vertices", []):
        graph.add_vertex(label)
    for edge in edges:
        if len(edge) != 3:
            raise DatasetError(f"{path}: malformed edge {edge!r}")
        u, v, t = edge
        graph.add_edge(u, v, int(t))
    if freeze:
        graph.freeze()
    return graph


def write_json(graph: TemporalGraph, path: PathLike) -> None:
    """Write the library's JSON graph format (preserves isolated vertices)."""
    payload = {
        "directed": graph.directed,
        "vertices": list(graph.vertices()),
        "edges": [[u, v, t] for u, v, t in graph.edges()],
    }
    with _open_text(path, "w") as fh:
        json.dump(payload, fh, separators=(",", ":"))


#: Accepted header names for each CSV column, lowercase.
_CSV_COLUMNS = {
    "source": ("source", "src", "from", "u", "payer", "sender"),
    "target": ("target", "dst", "to", "v", "payee", "receiver"),
    "timestamp": ("timestamp", "time", "t", "ts", "date", "when"),
}


def read_csv(
    path: PathLike, directed: bool = True, freeze: bool = True
) -> TemporalGraph:
    """Read a CSV with a header naming source/target/timestamp columns.

    Column matching is case-insensitive over the common aliases in
    ``_CSV_COLUMNS``; any extra columns are ignored.
    """
    import csv as _csv

    graph = TemporalGraph(directed=directed)
    with _open_text(path, "r") as fh:
        reader = _csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path}: empty CSV file") from None
        lower = [cell.strip().lower() for cell in header]
        indices = {}
        for role, aliases in _CSV_COLUMNS.items():
            for alias in aliases:
                if alias in lower:
                    indices[role] = lower.index(alias)
                    break
        missing = [role for role in _CSV_COLUMNS if role not in indices]
        if missing:
            raise DatasetError(
                f"{path}: CSV header {header!r} lacks recognisable "
                f"{'/'.join(missing)} column(s)"
            )
        for lineno, row in enumerate(reader, 2):
            if not row or all(not cell.strip() for cell in row):
                continue
            try:
                u = _parse_vertex(row[indices["source"]].strip())
                v = _parse_vertex(row[indices["target"]].strip())
                t = int(float(row[indices["timestamp"]].strip()))
            except (IndexError, ValueError) as exc:
                raise DatasetError(f"{path}:{lineno}: malformed row {row!r}") \
                    from exc
            graph.add_edge(u, v, t)
    if freeze:
        graph.freeze()
    return graph


def write_csv(graph: TemporalGraph, path: PathLike) -> None:
    """Write a graph as ``source,target,timestamp`` CSV with a header."""
    import csv as _csv

    with _open_text(path, "w") as fh:
        writer = _csv.writer(fh, lineterminator="\n")
        writer.writerow(["source", "target", "timestamp"])
        for u, v, t in graph.edges():
            writer.writerow([u, v, t])


READERS = {
    "edgelist": read_edgelist,
    "konect": read_konect,
    "json": read_json,
    "csv": read_csv,
}


def read_graph(
    path: PathLike, fmt: Optional[str] = None, directed: bool = True
) -> TemporalGraph:
    """Dispatch on *fmt*, or guess it from the filename.

    Guessing: ``*.json[.gz]`` → json; ``*.csv[.gz]`` → csv; files named
    ``out.*`` → konect; anything else → edgelist.
    """
    if fmt is None:
        name = Path(path).name
        stripped = name[:-3] if name.endswith(".gz") else name
        if stripped.endswith(".json"):
            fmt = "json"
        elif stripped.endswith(".csv"):
            fmt = "csv"
        elif stripped.startswith("out."):
            fmt = "konect"
        else:
            fmt = "edgelist"
    try:
        reader = READERS[fmt]
    except KeyError:
        known = ", ".join(sorted(READERS))
        raise DatasetError(f"unknown graph format {fmt!r}; known: {known}") from None
    if fmt == "json":
        return reader(path)
    return reader(path, directed=directed)
