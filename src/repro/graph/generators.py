"""Synthetic temporal graph generators.

Real temporal networks (the paper's Table II corpus) share two traits
that drive TILL-Index behaviour: **skewed degree distributions** (a few
hubs touch a large share of edges — which is what makes degree-ordered
two-hop covers small) and **temporal locality** (interactions cluster
into bursts — which is what makes skyline intervals short).  The
generators below reproduce those traits at configurable scale; the
Table II stand-ins in :mod:`repro.datasets` are built from them.

All generators take a ``seed`` and are deterministic for a given seed,
Python version and argument tuple.

Timestamps are drawn in ``1..lifetime`` so the generated graph's
:attr:`~repro.graph.temporal_graph.TemporalGraph.lifetime` matches the
requested value (up to sampling gaps at the extremes).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.temporal_graph import TemporalGraph

EdgeList = List[Tuple[int, int, int]]


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def _uniform_time(rng: random.Random, lifetime: int) -> int:
    return rng.randint(1, lifetime)


def _bursty_time(rng: random.Random, lifetime: int, bursts: int) -> int:
    """A timestamp from a mixture of Gaussian bursts over ``1..lifetime``.

    Models event-driven communication (releases, news cycles, matches):
    most edges fall near one of ``bursts`` centres.
    """
    centre = rng.randrange(bursts) + 1
    mean = centre * lifetime / (bursts + 1)
    t = int(round(rng.gauss(mean, max(1.0, lifetime / (6 * bursts)))))
    return min(max(t, 1), lifetime)


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value < 1:
            raise GraphError(f"{name} must be >= 1, got {value}")


def uniform_temporal_graph(
    num_vertices: int,
    num_edges: int,
    lifetime: int,
    directed: bool = True,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Erdős–Rényi-style: endpoints and timestamps uniform at random.

    The structureless control case — no hubs, no bursts.
    """
    _check_positive(num_vertices=num_vertices, num_edges=num_edges, lifetime=lifetime)
    rng = _rng(seed)
    graph = TemporalGraph(directed=directed)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for _ in range(num_edges):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        graph.add_edge(u, v, _uniform_time(rng, lifetime))
    return graph.freeze()


def preferential_attachment_temporal_graph(
    num_vertices: int,
    num_edges: int,
    lifetime: int,
    directed: bool = True,
    bursts: int = 8,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Power-law degrees with bursty timestamps.

    Edge endpoints are drawn from a growing repeated-endpoint pool
    (each placed edge feeds both endpoints back into the pool), giving
    a rich-get-richer degree distribution; timestamps come from
    :func:`_bursty_time`.  The workhorse behind most Table II stand-ins.
    """
    _check_positive(num_vertices=num_vertices, num_edges=num_edges, lifetime=lifetime)
    rng = _rng(seed)
    graph = TemporalGraph(directed=directed)
    for v in range(num_vertices):
        graph.add_vertex(v)
    pool: List[int] = []
    for _ in range(num_edges):
        u = pool[rng.randrange(len(pool))] if pool and rng.random() < 0.6 \
            else rng.randrange(num_vertices)
        v = pool[rng.randrange(len(pool))] if pool and rng.random() < 0.6 \
            else rng.randrange(num_vertices)
        graph.add_edge(u, v, _bursty_time(rng, lifetime, bursts))
        pool.append(u)
        pool.append(v)
        if len(pool) > 4 * num_vertices:  # bound memory, keep recency bias
            del pool[: len(pool) // 2]
    return graph.freeze()


def community_temporal_graph(
    num_vertices: int,
    num_edges: int,
    lifetime: int,
    communities: int = 8,
    intra_probability: float = 0.85,
    directed: bool = False,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Planted communities with mostly-internal edges and per-community
    activity windows.

    Models collaboration networks (DBLP-like): each community is active
    in a contiguous slice of the lifetime, so span-reachability within a
    short window mostly stays inside one community.
    """
    _check_positive(
        num_vertices=num_vertices, num_edges=num_edges, lifetime=lifetime,
        communities=communities,
    )
    if not 0.0 <= intra_probability <= 1.0:
        raise GraphError(
            f"intra_probability must be in [0, 1], got {intra_probability}"
        )
    rng = _rng(seed)
    graph = TemporalGraph(directed=directed)
    for v in range(num_vertices):
        graph.add_vertex(v)
    membership = [rng.randrange(communities) for _ in range(num_vertices)]
    members: List[List[int]] = [[] for _ in range(communities)]
    for v, c in enumerate(membership):
        members[c].append(v)
    # Each community is active around its own centre of the timeline.
    centres = [rng.randint(1, lifetime) for _ in range(communities)]
    spread = max(1.0, lifetime / (2 * communities))
    for _ in range(num_edges):
        c = rng.randrange(communities)
        group = members[c]
        u = group[rng.randrange(len(group))] if group else rng.randrange(num_vertices)
        if rng.random() < intra_probability and len(group) > 1:
            v = group[rng.randrange(len(group))]
        else:
            v = rng.randrange(num_vertices)
        t = int(round(rng.gauss(centres[c], spread)))
        graph.add_edge(u, v, min(max(t, 1), lifetime))
    return graph.freeze()


def cascade_temporal_graph(
    num_vertices: int,
    num_edges: int,
    lifetime: int,
    fanout: int = 3,
    directed: bool = True,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Email/retweet-style cascades: bursts of edges fanning out from a
    seed vertex within a narrow time slice.

    Produces many short time-respecting *and* span-connected chains —
    the regime where the two temporal reachability models diverge most.
    """
    _check_positive(
        num_vertices=num_vertices, num_edges=num_edges, lifetime=lifetime,
        fanout=fanout,
    )
    rng = _rng(seed)
    graph = TemporalGraph(directed=directed)
    for v in range(num_vertices):
        graph.add_vertex(v)
    placed = 0
    while placed < num_edges:
        source = rng.randrange(num_vertices)
        start = rng.randint(1, lifetime)
        frontier = [source]
        depth = rng.randint(1, 4)
        for level in range(depth):
            next_frontier = []
            t = min(lifetime, start + level)
            for u in frontier:
                for _ in range(rng.randint(1, fanout)):
                    if placed >= num_edges:
                        return graph.freeze()
                    v = rng.randrange(num_vertices)
                    graph.add_edge(u, v, t)
                    placed += 1
                    next_frontier.append(v)
            if not next_frontier:
                break
            frontier = next_frontier[: fanout * 2]
    return graph.freeze()


# ----------------------------------------------------------------------
# regular topologies (tests and worst cases)
# ----------------------------------------------------------------------


def path_temporal_graph(
    num_vertices: int,
    timestamps: Optional[Iterable[int]] = None,
    directed: bool = True,
) -> TemporalGraph:
    """A simple path ``0 → 1 → ... → n-1``; edge *i* gets the *i*-th
    timestamp (default ``1, 2, ...``).  The classic worst case for
    labeling size when timestamps decrease."""
    _check_positive(num_vertices=num_vertices)
    times = list(timestamps) if timestamps is not None else list(
        range(1, num_vertices)
    )
    if len(times) != num_vertices - 1:
        raise GraphError(
            f"a {num_vertices}-vertex path needs {num_vertices - 1} timestamps, "
            f"got {len(times)}"
        )
    edges = [(i, i + 1, times[i]) for i in range(num_vertices - 1)]
    return TemporalGraph.from_edges(edges, directed=directed)


def cycle_temporal_graph(
    num_vertices: int, lifetime: Optional[int] = None, directed: bool = True
) -> TemporalGraph:
    """A directed cycle with increasing timestamps (wraps at the end)."""
    _check_positive(num_vertices=num_vertices)
    lt = lifetime if lifetime is not None else num_vertices
    edges = [
        (i, (i + 1) % num_vertices, 1 + (i % lt)) for i in range(num_vertices)
    ]
    return TemporalGraph.from_edges(edges, directed=directed)


def star_temporal_graph(
    num_leaves: int, directed: bool = True, out: bool = True
) -> TemporalGraph:
    """A star: hub 0 connected to each leaf at timestamp = leaf index.

    ``out=True`` points hub → leaves; otherwise leaves → hub.
    """
    _check_positive(num_leaves=num_leaves)
    if out:
        edges = [(0, leaf, leaf) for leaf in range(1, num_leaves + 1)]
    else:
        edges = [(leaf, 0, leaf) for leaf in range(1, num_leaves + 1)]
    return TemporalGraph.from_edges(edges, directed=directed)


def complete_temporal_graph(
    num_vertices: int, lifetime: int = 1, directed: bool = True,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Every ordered pair gets one edge with a uniform timestamp."""
    _check_positive(num_vertices=num_vertices, lifetime=lifetime)
    rng = _rng(seed)
    graph = TemporalGraph(directed=directed)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for u in range(num_vertices):
        for v in range(num_vertices):
            if u == v:
                continue
            if not directed and u > v:
                continue
            graph.add_edge(u, v, _uniform_time(rng, lifetime))
    return graph.freeze()


GENERATORS: dict = {
    "uniform": uniform_temporal_graph,
    "preferential": preferential_attachment_temporal_graph,
    "community": community_temporal_graph,
    "cascade": cascade_temporal_graph,
}
