"""Historical reachability (Semertzidis, Pitoura & Lillis).

The related-work model the paper generalizes (Section II, Section VII):
given a window ``[t1, t2]``,

* **disjunctive** historical reachability holds when *some* timestamp
  ``t`` in the window admits a path all of whose edges carry exactly
  ``t`` — i.e. reachability in the snapshot :math:`\\mathcal{G}([t, t])`;
* **conjunctive** historical reachability holds when *every* timestamp
  in the window does.

The paper observes that disjunctive historical reachability is exactly
θ-reachability with ``θ = 1``; :func:`disjunctive_reachable` exploits
that and answers through a :class:`~repro.core.index.TILLIndex` when
one is supplied, falling back to snapshot BFS otherwise.
"""

from __future__ import annotations

from typing import Optional

from repro.core.intervals import IntervalLike, as_interval
from repro.graph.projection import project
from repro.graph.temporal_graph import TemporalGraph, Vertex


def disjunctive_reachable(
    graph: TemporalGraph,
    u: Vertex,
    v: Vertex,
    interval: IntervalLike,
    index: Optional["TILLIndex"] = None,  # noqa: F821 - forward ref
) -> bool:
    """Some single-timestamp snapshot inside *interval* connects *u* → *v*.

    Equivalent to ``index.theta_reachable(u, v, interval, theta=1)``;
    computed via snapshot BFS when no index is given.
    """
    window = as_interval(interval)
    if graph.index_of(u) == graph.index_of(v):
        return True
    if index is not None:
        return index.theta_reachable(u, v, window, theta=1)
    ui, vi = graph.index_of(u), graph.index_of(v)
    for t in range(window.start, window.end + 1):
        if project(graph, (t, t)).reaches(ui, vi):
            return True
    return False


def conjunctive_reachable(
    graph: TemporalGraph, u: Vertex, v: Vertex, interval: IntervalLike
) -> bool:
    """*Every* single-timestamp snapshot inside *interval* connects
    *u* → *v* — the strictest historical model."""
    window = as_interval(interval)
    if graph.index_of(u) == graph.index_of(v):
        return True
    ui, vi = graph.index_of(u), graph.index_of(v)
    return all(
        project(graph, (t, t)).reaches(ui, vi)
        for t in range(window.start, window.end + 1)
    )
