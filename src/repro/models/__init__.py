"""Related-work temporal reachability models (paper Sections I, VII).

These exist so examples and tests can demonstrate where span-
reachability diverges from earlier definitions:

* :mod:`repro.models.time_respecting` — non-decreasing-timestamp paths;
* :mod:`repro.models.historical` — single-snapshot (dis/con)junctive
  reachability of Semertzidis et al. (θ = 1 special case).
"""

from repro.models.historical import conjunctive_reachable, disjunctive_reachable
from repro.models.time_respecting import (
    earliest_arrival,
    time_respecting_reachable,
)

__all__ = [
    "time_respecting_reachable",
    "earliest_arrival",
    "disjunctive_reachable",
    "conjunctive_reachable",
]
