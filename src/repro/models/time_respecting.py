"""Time-respecting (journey) reachability — the classic temporal model.

The paper's introduction contrasts span-reachability with the
*time-respecting path* model [Kempe et al.; Holme & Saramäki]: ``u``
reaches ``v`` when a path exists whose edge timestamps are
non-decreasing.  This module implements that model so the examples and
experiments can demonstrate exactly the divergence the paper motivates
(e.g. the money-transfer chain whose timestamps are shuffled: span-
reachable, not time-respecting-reachable).

The core routine is an earliest-arrival search: a label-correcting BFS
that tracks, per vertex, the earliest timestamp at which it can be
reached by a time-respecting path starting within the query window.
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.core.intervals import IntervalLike, as_interval
from repro.graph.temporal_graph import TemporalGraph, Vertex


def earliest_arrival(
    graph: TemporalGraph, u: Vertex, interval: IntervalLike
) -> Dict[Vertex, int]:
    """Earliest arrival times of time-respecting paths from *u*.

    Only edges with timestamps inside *interval* may be used, and along
    a path timestamps must be non-decreasing.  Returns a mapping from
    every reachable vertex to its earliest arrival timestamp; *u* maps
    to ``interval.start`` (it is present from the beginning).

    Runs Dijkstra-style on arrival time: each vertex is finalized once
    with its minimal arrival, and an edge ``(x, y, t)`` relaxes ``y``
    when ``t >= arrival[x]`` and ``t`` is inside the window.
    """
    window = as_interval(interval)
    ui = graph.index_of(u)
    best: Dict[int, int] = {ui: window.start}
    heap = [(window.start, ui)]
    settled = set()
    while heap:
        arrival, x = heapq.heappop(heap)
        if x in settled:
            continue
        settled.add(x)
        # Edges usable from x: timestamp within [arrival, window.end].
        for y, t in graph.out_adj_window(x, arrival, window.end):
            if y not in settled and t < best.get(y, t + 1):
                best[y] = t
                heapq.heappush(heap, (t, y))
    return {graph.label_of(x): t for x, t in best.items()}


def time_respecting_reachable(
    graph: TemporalGraph, u: Vertex, v: Vertex, interval: IntervalLike
) -> bool:
    """Does a non-decreasing-timestamp path lead from *u* to *v* inside
    *interval*?  (The model span-reachability relaxes.)"""
    if graph.index_of(u) == graph.index_of(v):
        return True
    window = as_interval(interval)
    ui = graph.index_of(u)
    vi = graph.index_of(v)
    best: Dict[int, int] = {ui: window.start}
    heap = [(window.start, ui)]
    settled = set()
    while heap:
        arrival, x = heapq.heappop(heap)
        if x in settled:
            continue
        if x == vi:
            return True
        settled.add(x)
        for y, t in graph.out_adj_window(x, arrival, window.end):
            if y not in settled and t < best.get(y, t + 1):
                best[y] = t
                heapq.heappush(heap, (t, y))
    return False
