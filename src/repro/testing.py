"""Public testing utilities: oracles and Hypothesis strategies.

Downstream users extending the library (a new ordering, a custom
builder, an alternative query path) need the same machinery our own
suite uses: ground-truth oracles and random temporal-graph generation.
This module packages both behind a stable import path.

Hypothesis is an optional dependency of this module only — importing
:mod:`repro.testing` without Hypothesis installed still gives the
oracles; the strategy factories raise a clear error.

Example
-------

>>> from repro import TILLIndex
>>> from repro.testing import assert_index_correct, random_temporal_graph
>>> g = random_temporal_graph(seed=7, num_vertices=12, num_edges=40)
>>> assert_index_correct(TILLIndex.build(g), samples=50)
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.index import TILLIndex
from repro.fuzz.differential import check_index
from repro.fuzz.invariants import check_labels, label_invariant_violations
from repro.graph.projection import (
    span_reaches_bruteforce,
    theta_reaches_bruteforce,
)
from repro.graph.temporal_graph import TemporalGraph

__all__ = [
    "span_reaches_bruteforce",
    "theta_reaches_bruteforce",
    "random_temporal_graph",
    "assert_index_correct",
    "assert_index_consistent",
    "check_index",
    "check_labels",
    "label_invariant_violations",
    "temporal_graphs",
    "query_windows",
]


def random_temporal_graph(
    seed: int,
    num_vertices: int = 10,
    num_edges: int = 30,
    max_time: int = 10,
    directed: bool = True,
) -> TemporalGraph:
    """A reproducible uniform random temporal graph with **all**
    vertices present (isolated ones included), frozen and query-ready.

    The exact generator our own property tests use — uniform endpoints,
    uniform timestamps in ``1..max_time``.
    """
    rng = random.Random(seed)
    graph = TemporalGraph(directed=directed)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for _ in range(num_edges):
        graph.add_edge(
            rng.randrange(num_vertices),
            rng.randrange(num_vertices),
            rng.randint(1, max_time),
        )
    return graph.freeze()


def assert_index_correct(
    index: TILLIndex,
    samples: int = 200,
    seed: int = 0,
    theta_samples: int = 0,
) -> None:
    """Cross-check *index* against the brute-force oracles.

    Raises ``AssertionError`` with the offending query on the first
    disagreement.  ``theta_samples > 0`` additionally samples
    θ-reachability queries.  Respects a build-time ϑ cap by only
    drawing supported windows.
    """
    graph = index.graph
    n = graph.num_vertices
    if n < 2 or graph.min_time is None:
        return
    rng = random.Random(seed)
    lo, hi = graph.min_time, graph.max_time
    max_len = index.vartheta if index.vartheta is not None else graph.lifetime
    for _ in range(samples):
        u = graph.label_of(rng.randrange(n))
        v = graph.label_of(rng.randrange(n))
        start = rng.randint(lo, hi)
        end = min(hi, start + rng.randint(0, max(0, max_len - 1)))
        window = (start, end)
        got = index.span_reachable(u, v, window)
        want = span_reaches_bruteforce(graph, u, v, window)
        assert got == want, (
            f"span query disagrees with oracle: {u!r} -> {v!r} in {window}: "
            f"index={got}, oracle={want}"
        )
    for _ in range(theta_samples):
        u = graph.label_of(rng.randrange(n))
        v = graph.label_of(rng.randrange(n))
        start = rng.randint(lo, hi)
        end = rng.randint(start, hi)
        theta = rng.randint(1, min(max_len, end - start + 1))
        got = index.theta_reachable(u, v, (start, end), theta)
        want = theta_reaches_bruteforce(graph, u, v, (start, end), theta)
        assert got == want, (
            f"theta query disagrees with oracle: {u!r} -> {v!r} in "
            f"[{start}, {end}], theta={theta}: index={got}, oracle={want}"
        )


def assert_index_consistent(
    index: TILLIndex, samples: int = 100, seed: int = 0
) -> None:
    """The full :mod:`repro.fuzz` consistency check as one assertion.

    Stronger than :func:`assert_index_correct`: validates the
    structural label invariants, then cross-checks *every* answer path
    (prefilter on/off, online, profiled, batch, explain, witness paths,
    θ sliding/naive/online, minimal windows, ϑ-cap fallbacks) against
    the brute-force oracles.  Raises ``AssertionError`` with the first
    offending query.
    """
    violations = label_invariant_violations(index)
    assert not violations, f"label invariant violated: {violations[0]}"
    mismatches = check_index(
        index, samples=samples, seed=seed, first_failure=True
    )
    assert not mismatches, f"answer paths disagree: {mismatches[0]}"


def _require_hypothesis():
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - env without hypothesis
        raise ImportError(
            "repro.testing's strategy factories need the 'hypothesis' "
            "package; install it or use random_temporal_graph() instead"
        ) from exc
    return st


def temporal_graphs(
    max_vertices: int = 12,
    max_edges: int = 40,
    max_time: int = 12,
    directed: Optional[bool] = None,
):
    """A Hypothesis strategy producing frozen random temporal graphs.

    ``directed=None`` draws both kinds; pass ``True``/``False`` to pin.
    """
    st = _require_hypothesis()
    directed_strategy = (
        st.booleans() if directed is None else st.just(directed)
    )

    return st.builds(
        random_temporal_graph,
        seed=st.integers(0, 2**32 - 1),
        num_vertices=st.integers(2, max_vertices),
        num_edges=st.integers(1, max_edges),
        max_time=st.integers(1, max_time),
        directed=directed_strategy,
    )


def query_windows(min_time: int = 1, max_time: int = 12):
    """A Hypothesis strategy for valid ``(start, end)`` query windows
    within ``[min_time, max_time]``."""
    st = _require_hypothesis()

    def _sorted_pair(pair):
        a, b = pair
        return (min(a, b), max(a, b))

    return st.tuples(
        st.integers(min_time, max_time), st.integers(min_time, max_time)
    ).map(_sorted_pair)
