"""Throttled progress reporting on top of the span tracer.

Long index builds used to be silent: :func:`build_labels_optimized`
has always exposed a ``progress(done, total)`` hook, but nothing in
the CLI consumed it.  :class:`ProgressPrinter` is that consumer — it
is *itself* a valid progress hook, records every milestone as a tracer
event (so the trace file shows build progress over time), and prints a
throttled human-readable line so a terminal isn't flooded by one line
per root on a million-vertex graph.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

from repro.obs.trace import NullTracer, SpanTracer


class ProgressPrinter:
    """A ``progress(done, total)`` hook that prints and traces.

    Parameters
    ----------
    label:
        What is progressing (``"build"``, ``"shard-build"``); prefixes
        every printed line and names the tracer events.
    unit:
        The unit of *done*/*total* (``"roots"``, ``"shards"``).
    tracer:
        Optional :class:`SpanTracer`; every *printed* milestone is also
        recorded as a ``<label>.progress`` event.
    min_interval:
        Minimum seconds between printed lines (the first and the final
        milestone always print).
    """

    def __init__(
        self,
        label: str,
        unit: str = "roots",
        tracer: Optional[SpanTracer] = None,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.5,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.label = label
        self.unit = unit
        self.tracer = NullTracer() if tracer is None else tracer
        self.stream = sys.stderr if stream is None else stream
        self.min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_printed: Optional[float] = None
        self.lines_printed = 0

    def __call__(self, done: int, total: int) -> None:
        now = self._clock()
        if (self._last_printed is not None and done < total
                and now - self._last_printed < self.min_interval):
            return
        self._last_printed = now
        elapsed = now - self._started
        rate = done / elapsed if elapsed > 0 else 0.0
        if self.tracer:
            self.tracer.event(
                f"{self.label}.progress", done=done, total=total,
                elapsed=elapsed,
            )
        pct = 100.0 * done / total if total else 100.0
        print(
            f"{self.label}: {done}/{total} {self.unit} ({pct:.0f}%, "
            f"{rate:.0f} {self.unit}/s)",
            file=self.stream,
        )
        self.lines_printed += 1
