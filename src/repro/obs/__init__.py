"""Unified telemetry: metrics registry, span tracing, exports.

One observability layer for all three execution layers:

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms in a :class:`MetricsRegistry`, exported as a
  schema-validated JSON document or Prometheus text exposition;
* **tracing** (:mod:`repro.obs.trace`) — nested timed spans and
  instant events as JSON lines, with a strict no-op
  :data:`NULL_TRACER` so disabled hot paths pay one truthy check;
* **bundling** (:mod:`repro.obs.telemetry`) — the single
  ``telemetry=`` argument accepted by :meth:`TILLIndex.build`,
  :class:`~repro.serve.QueryEngine`,
  :class:`~repro.shard.ShardedTILLIndex` and
  :func:`repro.fuzz.run_fuzz`;
* **validation** (:mod:`repro.obs.validate`) — the schema checkers
  behind ``python -m repro.obs.validate`` and ``make obs-smoke``;
* **progress** (:mod:`repro.obs.progress`) — the throttled
  ``--progress`` printer built on tracer events.

See the "Observability" section of ``docs/usage.md`` for metric names
and the trace event schema.
"""

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.fleet import (
    FleetReporter,
    aggregate_spool,
    merge_metrics_docs,
    merge_trace_files,
    reassemble_request,
    render_prometheus,
    serve_metrics_http,
)
from repro.obs.progress import ProgressPrinter
from repro.obs.slowlog import SlowQueryLog, check_slo, histogram_quantile
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    AppendSink,
    NullTracer,
    SpanTracer,
    open_stream_tracer,
    read_trace,
)
# NOTE: repro.obs.validate is deliberately NOT imported here — it is
# runnable as ``python -m repro.obs.validate`` and importing it from
# the package init would trip runpy's double-import warning.  Import
# the checkers from the submodule directly.

__all__ = [
    "AppendSink",
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "FleetReporter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProgressPrinter",
    "SlowQueryLog",
    "SpanTracer",
    "Telemetry",
    "TRACE_SCHEMA",
    "aggregate_spool",
    "check_slo",
    "histogram_quantile",
    "merge_metrics_docs",
    "merge_trace_files",
    "open_stream_tracer",
    "read_trace",
    "reassemble_request",
    "render_prometheus",
    "serve_metrics_http",
]
