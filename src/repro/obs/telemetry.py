"""The telemetry bundle handed through the layers.

Every instrumented component — :meth:`TILLIndex.build`,
:class:`~repro.serve.QueryEngine`, :class:`~repro.shard.ShardedTILLIndex`,
:func:`repro.fuzz.run_fuzz` — takes one optional ``telemetry``
argument.  ``None`` (the default) disables instrumentation entirely:
hot paths guard every recording with a single truthy check, so the
disabled cost is one attribute load and branch.

A :class:`Telemetry` couples a :class:`~repro.obs.metrics.MetricsRegistry`
with a :class:`~repro.obs.trace.SpanTracer` so call sites don't thread
two objects.  Either half can be swapped — pass ``tracer=NULL_TRACER``
to keep the counters but drop the event stream (the bench overhead
scenario measures both configurations).
"""

from __future__ import annotations

import json
from typing import Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, SpanTracer


class Telemetry:
    """A metrics registry plus a span tracer, moved as one unit."""

    __slots__ = ("metrics", "tracer")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Union[SpanTracer, NullTracer]] = None,
    ):
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.tracer = SpanTracer() if tracer is None else tracer

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def write_metrics(self, path) -> None:
        """Write the metrics snapshot as a JSON document to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.metrics.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def write_trace(self, path) -> None:
        """Write the recorded trace as JSON lines to *path* (no-op
        tracer writes a header-only file)."""
        if isinstance(self.tracer, NullTracer):
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(
                    {"type": "header", "schema": "repro-trace/1",
                     "events": 0}, sort_keys=True) + "\n")
            return
        self.tracer.write(path)
