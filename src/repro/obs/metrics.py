"""The metrics registry: counters, gauges, fixed-bucket histograms.

The paper's evaluation attributes cost to *where the work happens* —
construction cost per root (Fig. 6), label-entry counts (Figs. 5/7/8),
per-query merge work (Figs. 4/9).  This module is the runtime
counterpart: one :class:`MetricsRegistry` shared by the build, serve
and shard layers, exportable both as a machine-readable JSON document
(schema ``repro-metrics/1``) and in the Prometheus text exposition
format for scraping.

Design constraints, in order:

* **Hot-path cheapness.**  Instruments are plain dict updates; an
  unlabeled ``Counter.inc()`` is one dict ``get`` + one store.  Code
  that may run without telemetry holds ``telemetry=None`` and pays a
  single truthy check (see :mod:`repro.obs.telemetry`).
* **Fixed buckets.**  Histograms take their upper bounds at creation
  (cumulative ``le`` semantics, implicit ``+Inf``), so a snapshot is
  mergeable and the Prometheus rendering is exact, never estimated.
* **Determinism.**  ``snapshot()`` orders metrics and series
  lexicographically, so two identical runs export identical documents
  (the test suite relies on this).
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

METRICS_SCHEMA = "repro-metrics/1"

#: Prometheus-compatible metric / label-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): 100 µs .. 30 s, roughly 1-3-10.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0
)

#: Default magnitude buckets for size-like quantities (batch sizes,
#: boundary-set sizes, label entries per root).
DEFAULT_SIZE_BUCKETS = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: str = "") -> str:
    """``{a="x",b="y"}`` with Prometheus escaping (empty string when
    there is nothing to render)."""
    parts = [
        '%s="%s"' % (k, v.replace("\\", r"\\").replace('"', r"\"")
                     .replace("\n", r"\n"))
        for k, v in key
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Metric:
    """Base: a named instrument holding one series per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    # Subclasses provide: series_dicts() -> List[Dict[str, Any]]
    # (deterministically ordered) and prometheus_lines().


class Counter(Metric):
    """A monotonically increasing count (events, queries, prunes)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels) if labels else ()
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels) if labels else (), 0)

    def series_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]

    def prometheus_lines(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_fmt(value)}"
            for key, value in sorted(self._series.items())
        ]


class Gauge(Metric):
    """A value that goes up and down (rates, sizes, ratios)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels) if labels else ()] = value

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels) if labels else ()
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> Optional[float]:
        return self._series.get(_label_key(labels) if labels else ())

    def series_dicts(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]

    def prometheus_lines(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_fmt(value)}"
            for key, value in sorted(self._series.items())
        ]


class _HistSeries:
    __slots__ = ("counts", "sum", "count", "max")

    def __init__(self, num_buckets: int):
        self.counts = [0] * (num_buckets + 1)  # + the implicit +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.max = float("-inf")


class Histogram(Metric):
    """Fixed cumulative buckets (Prometheus ``le`` semantics).

    ``buckets`` are the finite upper bounds, strictly increasing; every
    observation lands in the first bucket whose bound is ``>= value``
    (or the implicit ``+Inf`` bucket).  The exact ``max`` is tracked
    alongside, since tail latency is the point of the exercise.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 help: str = ""):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds
        self._series: Dict[LabelKey, _HistSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels) if labels else ()
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.buckets))
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1
        if value > series.max:
            series.max = value

    def series_dicts(self) -> List[Dict[str, Any]]:
        out = []
        for key, s in sorted(self._series.items()):
            out.append({
                "labels": dict(key),
                "counts": list(s.counts),
                "sum": s.sum,
                "count": s.count,
                "max": s.max,
            })
        return out

    def prometheus_lines(self) -> List[str]:
        lines = []
        for key, s in sorted(self._series.items()):
            cumulative = 0
            for bound, n in zip(self.buckets, s.counts):
                cumulative += n
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, 'le=%s' % _quote(_fmt(bound)))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(key, 'le=%s' % _quote('+Inf'))} {s.count}"
            )
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_fmt(s.sum)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {s.count}")
        return lines


def _quote(text: str) -> str:
    return '"%s"' % text


def _fmt(value: float) -> str:
    """Render ints without a trailing ``.0`` (stable, compact)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricsRegistry:
    """A namespace of instruments; create-or-get semantics by name.

    Registration is idempotent: asking twice for the same name returns
    the same instrument, and asking with a conflicting kind (or, for
    histograms, conflicting buckets) raises ``ValueError`` — two call
    sites silently writing different shapes into one series is exactly
    the bug a registry exists to prevent.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, buckets: Sequence[float],
                  help: str = "") -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not histogram"
                )
            if existing.buckets != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name!r} already registered with different "
                    "buckets"
                )
            return existing
        metric = Histogram(name, buckets, help)
        self._metrics[name] = metric
        return metric

    def _register(self, cls, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The full registry as a ``repro-metrics/1`` JSON document."""
        metrics: Dict[str, Any] = {}
        for metric in self:
            entry: Dict[str, Any] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": metric.series_dicts(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            metrics[metric.name] = entry
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")
