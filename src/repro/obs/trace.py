"""Nested timed spans recorded as JSON-lines events.

A :class:`SpanTracer` records *where time went* with structure the
flat metrics registry cannot express: a ``build`` span contains
``root-batch`` spans; a ``query-batch`` span contains the route
decision and the cache/index/online path that answered it.  Events are
plain dicts, written as one JSON object per line (schema
``repro-trace/1``) so they stream, concatenate, and grep.

The disabled configuration is :data:`NULL_TRACER` (or ``None``): a
strict no-op whose ``span()`` returns one reusable empty context
manager, so instrumented hot paths pay only a truthy check —

    if tracer:
        tracer.event("route", route=plan.route)

``bool(NULL_TRACER)`` is ``False`` and ``bool(SpanTracer())`` is
``True``; nothing else about the two types differs in surface API.

Event shapes
------------

Span (emitted when the span *closes*)::

    {"type": "span", "name": ..., "id": N, "parent": N|null,
     "depth": D, "start": seconds-since-tracer-creation,
     "dur": seconds, "attrs": {...}}

Instant event::

    {"type": "event", "name": ..., "id": N, "parent": N|null,
     "depth": D, "at": seconds-since-tracer-creation, "attrs": {...}}

The first line written by :meth:`SpanTracer.write` is a header::

    {"type": "header", "schema": "repro-trace/1", "events": N}
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Union

TRACE_SCHEMA = "repro-trace/1"

Sink = Callable[[Dict[str, Any]], None]


class _SpanHandle:
    """Context manager for one open span; records the event on exit."""

    __slots__ = ("_tracer", "_name", "_id", "_parent", "_depth", "_start",
                 "attrs")

    def __init__(self, tracer: "SpanTracer", name: str, span_id: int,
                 parent: Optional[int], depth: int, start: float,
                 attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._id = span_id
        self._parent = parent
        self._depth = depth
        self._start = start
        self.attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self)
        return None


class _NullSpan:
    """The reusable no-op context manager handed out by NullTracer."""

    __slots__ = ("attrs",)

    def __init__(self):
        self.attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.attrs.clear()
        return None


class NullTracer:
    """The disabled tracer: falsy, allocation-free, does nothing."""

    __slots__ = ("_span",)

    def __init__(self):
        self._span = _NullSpan()

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return self._span

    def event(self, name: str, **attrs: Any) -> None:
        return None

    @property
    def events(self) -> List[Dict[str, Any]]:
        return []


#: The shared disabled tracer.  ``if tracer:`` is the whole dispatch.
NULL_TRACER = NullTracer()


class SpanTracer:
    """Records nested spans and instant events (see module docstring).

    Parameters
    ----------
    sink:
        Optional callable invoked with every event dict as it is
        recorded — live streaming (the CLI's ``--progress`` printer)
        without waiting for :meth:`write`.
    clock:
        Override for tests; defaults to :func:`time.perf_counter`.
    """

    def __init__(self, sink: Optional[Sink] = None,
                 clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._sink = sink
        self._stack: List[_SpanHandle] = []
        self._next_id = 1
        self.events: List[Dict[str, Any]] = []

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1]._id if self._stack else None
        handle = _SpanHandle(
            self, name, self._next_id, parent, len(self._stack),
            self._now(), dict(attrs),
        )
        self._next_id += 1
        self._stack.append(handle)
        return handle

    def _close(self, handle: _SpanHandle) -> None:
        # Pop through abandoned children so a leaked handle cannot
        # corrupt the ancestry of later spans.
        while self._stack and self._stack[-1] is not handle:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        now = self._now()
        self._record({
            "type": "span",
            "name": handle._name,
            "id": handle._id,
            "parent": handle._parent,
            "depth": handle._depth,
            "start": handle._start,
            "dur": now - handle._start,
            "attrs": handle.attrs,
        })

    def event(self, name: str, **attrs: Any) -> None:
        """Record one instant event under the currently open span."""
        parent = self._stack[-1]._id if self._stack else None
        self._record({
            "type": "event",
            "name": name,
            "id": self._next_id,
            "parent": parent,
            "depth": len(self._stack),
            "at": self._now(),
            "attrs": dict(attrs),
        })
        self._next_id += 1

    def _record(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    # ------------------------------------------------------------------

    def write(self, path: Union[str, "object"]) -> None:
        """Write header + events as JSON lines to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"type": "header", "schema": TRACE_SCHEMA,
                 "events": len(self.events)},
                sort_keys=True,
            ) + "\n")
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True, default=str)
                         + "\n")


def read_trace(path) -> List[Dict[str, Any]]:
    """Read a JSON-lines trace file back (header line excluded)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("type") != "header":
                events.append(event)
    return events
