"""Nested timed spans recorded as JSON-lines events.

A :class:`SpanTracer` records *where time went* with structure the
flat metrics registry cannot express: a ``build`` span contains
``root-batch`` spans; a ``query-batch`` span contains the route
decision and the cache/index/online path that answered it.  Events are
plain dicts, written as one JSON object per line (schema
``repro-trace/1``) so they stream, concatenate, and grep.

The disabled configuration is :data:`NULL_TRACER` (or ``None``): a
strict no-op whose ``span()`` returns one reusable empty context
manager, so instrumented hot paths pay only a truthy check —

    if tracer:
        tracer.event("route", route=plan.route)

``bool(NULL_TRACER)`` is ``False`` and ``bool(SpanTracer())`` is
``True``; nothing else about the two types differs in surface API.

Event shapes
------------

Span (emitted when the span *closes*)::

    {"type": "span", "name": ..., "id": N, "parent": N|null,
     "depth": D, "start": seconds-since-tracer-creation,
     "dur": seconds, "attrs": {...}}

Instant event::

    {"type": "event", "name": ..., "id": N, "parent": N|null,
     "depth": D, "at": seconds-since-tracer-creation, "attrs": {...}}

The first line written by :meth:`SpanTracer.write` is a header::

    {"type": "header", "schema": "repro-trace/1", "events": N,
     "wall_epoch": unix-seconds}

Streaming files written by :class:`AppendSink` start with a header
that carries ``"streaming": true`` and no ``"events"`` count (the
writer cannot know it up front); every event line additionally carries
the sink's extra labels (``pid``, ``worker``) so per-process files can
be merged after the fact (:func:`repro.obs.fleet.merge_trace_files`).
``wall_epoch`` is the wall-clock time the tracer's relative clock
started, letting a merger place events from different processes on one
absolute timeline.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

TRACE_SCHEMA = "repro-trace/1"

Sink = Callable[[Dict[str, Any]], None]


class _SpanHandle:
    """Context manager for one open span; records the event on exit."""

    __slots__ = ("_tracer", "_name", "_id", "_parent", "_depth", "_start",
                 "attrs")

    def __init__(self, tracer: "SpanTracer", name: str, span_id: int,
                 parent: Optional[int], depth: int, start: float,
                 attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._id = span_id
        self._parent = parent
        self._depth = depth
        self._start = start
        self.attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self)
        return None


class _NullSpan:
    """The reusable no-op context manager handed out by NullTracer."""

    __slots__ = ("attrs",)

    def __init__(self):
        self.attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.attrs.clear()
        return None


class NullTracer:
    """The disabled tracer: falsy, allocation-free, does nothing."""

    __slots__ = ("_span",)

    def __init__(self):
        self._span = _NullSpan()

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return self._span

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def now(self) -> float:
        return 0.0

    def record_span(self, name: str, start: float, dur: float,
                    parent: Optional[int] = None, **attrs: Any) -> int:
        return 0

    @property
    def wall_epoch(self) -> float:
        return 0.0

    @property
    def events(self) -> List[Dict[str, Any]]:
        return []


#: The shared disabled tracer.  ``if tracer:`` is the whole dispatch.
NULL_TRACER = NullTracer()


class SpanTracer:
    """Records nested spans and instant events (see module docstring).

    Parameters
    ----------
    sink:
        Optional callable invoked with every event dict as it is
        recorded — live streaming (the CLI's ``--progress`` printer)
        without waiting for :meth:`write`.
    clock:
        Override for tests; defaults to :func:`time.perf_counter`.
    keep:
        When ``False`` events are handed to the sink only and never
        retained in :attr:`events` — the right mode for long-running
        servers streaming to an :class:`AppendSink`, where unbounded
        in-memory retention would be a leak.
    """

    def __init__(self, sink: Optional[Sink] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 keep: bool = True):
        self._clock = clock
        self._epoch = clock()
        #: Wall-clock time of the relative epoch, for cross-process merge.
        self.wall_epoch = time.time()
        self._sink = sink
        self._keep = keep
        self._stack: List[_SpanHandle] = []
        self._next_id = 1
        self.events: List[Dict[str, Any]] = []

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def now(self) -> float:
        """Seconds since tracer creation — the timebase of every event."""
        return self._now()

    def set_sink(self, sink: Optional[Sink]) -> None:
        """Attach (or detach) the live event sink."""
        self._sink = sink

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1]._id if self._stack else None
        handle = _SpanHandle(
            self, name, self._next_id, parent, len(self._stack),
            self._now(), dict(attrs),
        )
        self._next_id += 1
        self._stack.append(handle)
        return handle

    def _close(self, handle: _SpanHandle) -> None:
        # Pop through abandoned children so a leaked handle cannot
        # corrupt the ancestry of later spans.
        while self._stack and self._stack[-1] is not handle:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        now = self._now()
        self._record({
            "type": "span",
            "name": handle._name,
            "id": handle._id,
            "parent": handle._parent,
            "depth": handle._depth,
            "start": handle._start,
            "dur": now - handle._start,
            "attrs": handle.attrs,
        })

    def event(self, name: str, **attrs: Any) -> None:
        """Record one instant event under the currently open span."""
        parent = self._stack[-1]._id if self._stack else None
        self._record({
            "type": "event",
            "name": name,
            "id": self._next_id,
            "parent": parent,
            "depth": len(self._stack),
            "at": self._now(),
            "attrs": dict(attrs),
        })
        self._next_id += 1

    def record_span(self, name: str, start: float, dur: float,
                    parent: Optional[int] = None, **attrs: Any) -> int:
        """Record an already-timed span without touching the nesting stack.

        The stack discipline of :meth:`span` assumes one logical thread
        of control; interleaved asyncio tasks and executor threads would
        corrupt it.  Serving-tier instrumentation measures ``start`` /
        ``dur`` itself (``start`` in :meth:`now` units) and records the
        closed span here — linkage across such spans is by shared attrs
        (trace id, batch id), not by ``parent``.  Returns the span id.
        """
        span_id = self._next_id
        self._next_id += 1
        self._record({
            "type": "span",
            "name": name,
            "id": span_id,
            "parent": parent,
            "depth": 0,
            "start": start,
            "dur": max(0.0, dur),
            "attrs": dict(attrs),
        })
        return span_id

    def _record(self, event: Dict[str, Any]) -> None:
        if self._keep:
            self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    # ------------------------------------------------------------------

    def write(self, path: Union[str, "object"]) -> None:
        """Write header + events as JSON lines to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"type": "header", "schema": TRACE_SCHEMA,
                 "events": len(self.events),
                 "wall_epoch": self.wall_epoch},
                sort_keys=True,
            ) + "\n")
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True, default=str)
                         + "\n")


class AppendSink:
    """Multi-process-safe JSON-lines sink for :class:`SpanTracer`.

    Opens *path* with ``O_APPEND`` and emits each event as exactly one
    :func:`os.write` of one complete line, so concurrent writers never
    interleave partial JSON (POSIX appends are atomic with respect to
    the file offset).  The first line is a streaming header (no event
    count — unknowable up front) carrying ``wall_epoch`` and the extra
    labels; every event line is stamped with the same extras (``pid``,
    ``worker``) so a merger can tell the processes apart.
    """

    def __init__(self, path, wall_epoch: Optional[float] = None,
                 extra: Optional[Dict[str, Any]] = None,
                 header: bool = True):
        self.path = str(path)
        self.extra = dict(extra or {})
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if header:
            self._emit({
                "type": "header", "schema": TRACE_SCHEMA,
                "streaming": True,
                "wall_epoch": (time.time() if wall_epoch is None
                               else wall_epoch),
                **self.extra,
            })

    def __call__(self, event: Dict[str, Any]) -> None:
        if self.extra:
            event = {**event, **self.extra}
        self._emit(event)

    def _emit(self, obj: Dict[str, Any]) -> None:
        line = json.dumps(obj, sort_keys=True, default=str) + "\n"
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "AppendSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_stream_tracer(path, **extra: Any) -> Tuple[SpanTracer, AppendSink]:
    """A ``(tracer, sink)`` pair streaming straight to *path*.

    The tracer retains nothing in memory (``keep=False``); the sink
    stamps every line with *extra* (conventionally ``pid`` and
    ``worker``) and shares the tracer's ``wall_epoch`` so merged
    timelines line up.  Close the sink when the process is done.
    """
    tracer = SpanTracer(keep=False)
    sink = AppendSink(path, wall_epoch=tracer.wall_epoch, extra=extra)
    tracer.set_sink(sink)
    return tracer, sink


def read_trace(path) -> List[Dict[str, Any]]:
    """Read a JSON-lines trace file back (header line excluded)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("type") != "header":
                events.append(event)
    return events
