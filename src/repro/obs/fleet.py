"""Fleet-wide aggregation over per-worker telemetry.

PR 8's pre-fork serving tier gave every worker a private
:class:`~repro.obs.metrics.MetricsRegistry` and (optionally) a private
trace stream — which means a ``stats`` op only ever showed the worker
that happened to accept the connection.  This module is the fleet
layer on top:

* **Spool snapshots** — each worker periodically writes its registry
  snapshot to ``metrics-{pid}.json`` inside a spool directory
  (:class:`FleetReporter`), atomically (write temp + ``os.rename``) so
  readers never see a torn document.
* **Merge** — :func:`merge_metrics_docs` folds any number of
  ``repro-metrics/1`` documents into one: counters are summed per
  label set, gauges keep one series per worker (a synthesized
  ``worker`` label; last write wins within a worker, which is free
  because each worker owns exactly one spool file), and fixed-bucket
  histograms merge bucket-wise (identical bucket bounds are required —
  a mismatch is reported, not silently mangled).
* **Exposure** — :func:`aggregate_spool` powers the ``metrics`` wire
  op (any worker answers for the whole fleet), ``repro stats --live``
  and the parent-process Prometheus endpoint
  (:func:`serve_metrics_http`, rendered by :func:`render_prometheus`
  straight from the merged document).
* **Trace reassembly** — :func:`merge_trace_files` zips per-worker
  ``repro-trace/1`` streams onto one absolute timeline using each
  header's ``wall_epoch``; :func:`reassemble_request` extracts a
  single request's cross-process story (server span → batch span that
  coalesced it → engine execution of that batch).

The merged document stays schema-valid ``repro-metrics/1`` (with an
extra top-level ``"fleet"`` block describing the member snapshots), so
``python -m repro.obs.validate`` and every existing consumer keep
working.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    _fmt,
    _quote,
    _render_labels,
)
from repro.obs.trace import TRACE_SCHEMA

#: Spool file pattern; one file per live worker process.
METRICS_GLOB = "metrics-*.json"
TRACE_GLOB = "trace-*.jsonl"


def spool_metrics_path(spool: str, pid: Optional[int] = None) -> str:
    """The per-process metrics snapshot path inside *spool*."""
    return os.path.join(spool, f"metrics-{pid or os.getpid()}.json")


def spool_trace_path(spool: str, pid: Optional[int] = None) -> str:
    """The per-process trace stream path inside *spool*."""
    return os.path.join(spool, f"trace-{pid or os.getpid()}.jsonl")


class FleetReporter:
    """Periodically publishes one worker's registry into the spool.

    ``flush()`` snapshots the registry, stamps it with worker identity
    (``{"worker": {"pid", "id", "seq", "written_at"}}``) and renames a
    temp file over ``metrics-{pid}.json`` — readers always see either
    the previous complete document or the new one, never a torn write.
    """

    def __init__(self, telemetry, spool: str,
                 worker_id: Optional[int] = None,
                 pid: Optional[int] = None):
        self.telemetry = telemetry
        self.spool = str(spool)
        self.pid = pid or os.getpid()
        self.worker_id = worker_id
        self.path = spool_metrics_path(self.spool, self.pid)
        self._seq = 0
        os.makedirs(self.spool, exist_ok=True)

    def flush(self) -> str:
        """Write the current snapshot atomically; returns the path."""
        self._seq += 1
        doc = self.telemetry.metrics.snapshot()
        doc["worker"] = {
            "pid": self.pid,
            "id": self.worker_id,
            "seq": self._seq,
            "written_at": time.time(),
        }
        tmp = f"{self.path}.tmp.{self.pid}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.rename(tmp, self.path)
        return self.path


# ----------------------------------------------------------------------
# metrics merge
# ----------------------------------------------------------------------


def _worker_label(doc: Dict[str, Any], index: int) -> str:
    meta = doc.get("worker") or {}
    if meta.get("id") is not None:
        return f"w{meta['id']}"
    if meta.get("pid") is not None:
        return str(meta["pid"])
    return f"doc{index}"


def merge_metrics_docs(
    docs: Sequence[Dict[str, Any]],
) -> Tuple[Dict[str, Any], List[str]]:
    """Fold ``repro-metrics/1`` documents into one fleet document.

    Returns ``(merged_doc, problems)``.  Merge rules: counters sum per
    label set; gauges gain a ``worker`` label and keep one series per
    worker (point-in-time values from different processes are not
    addable); histograms merge bucket-wise and require identical
    bucket bounds.  Kind or bucket conflicts land in *problems* and the
    conflicting document's entry is skipped, never silently coerced.
    """
    problems: List[str] = []
    merged: Dict[str, Dict[str, Any]] = {}
    workers_meta: List[Dict[str, Any]] = []

    for index, doc in enumerate(docs):
        worker = _worker_label(doc, index)
        meta = dict(doc.get("worker") or {})
        meta["label"] = worker
        workers_meta.append(meta)
        for name, entry in (doc.get("metrics") or {}).items():
            kind = entry.get("kind")
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "kind": kind,
                    "help": entry.get("help", ""),
                    "series": {},
                }
                if kind == "histogram":
                    target["buckets"] = list(entry.get("buckets") or [])
            elif target["kind"] != kind:
                problems.append(
                    f"{worker}: metric {name!r} is {kind!r} here but "
                    f"{target['kind']!r} elsewhere — skipped"
                )
                continue
            if kind == "histogram" and \
                    target["buckets"] != list(entry.get("buckets") or []):
                problems.append(
                    f"{worker}: histogram {name!r} bucket bounds differ "
                    "across workers — skipped"
                )
                continue
            for series in entry.get("series") or []:
                labels = dict(series.get("labels") or {})
                if kind == "gauge":
                    labels["worker"] = worker
                key = tuple(sorted(labels.items()))
                slot = target["series"].get(key)
                if kind == "counter":
                    value = series.get("value", 0)
                    if slot is None:
                        target["series"][key] = {"labels": labels,
                                                 "value": value}
                    else:
                        slot["value"] += value
                elif kind == "gauge":
                    # One file per worker makes this last-write-wins
                    # *within* a worker by construction.
                    target["series"][key] = {"labels": labels,
                                             "value": series.get("value", 0)}
                else:
                    counts = list(series.get("counts") or [])
                    if slot is None:
                        target["series"][key] = {
                            "labels": labels,
                            "counts": counts,
                            "sum": series.get("sum", 0.0),
                            "count": series.get("count", 0),
                            "max": series.get("max", float("-inf")),
                        }
                    elif len(counts) != len(slot["counts"]):
                        problems.append(
                            f"{worker}: histogram {name!r} count width "
                            "differs — series skipped"
                        )
                    else:
                        slot["counts"] = [a + b for a, b
                                          in zip(slot["counts"], counts)]
                        slot["sum"] += series.get("sum", 0.0)
                        slot["count"] += series.get("count", 0)
                        slot["max"] = max(slot["max"],
                                          series.get("max", float("-inf")))

    metrics: Dict[str, Any] = {}
    for name in sorted(merged):
        entry = merged[name]
        out: Dict[str, Any] = {
            "kind": entry["kind"],
            "help": entry["help"],
            "series": [entry["series"][k] for k in sorted(entry["series"])],
        }
        if entry["kind"] == "histogram":
            out["buckets"] = entry["buckets"]
        metrics[name] = out

    # Synthesized fleet-level gauges: how many snapshots went into the
    # merge and how stale each one is (dashboards watch these live).
    metrics["fleet_workers"] = {
        "kind": "gauge",
        "help": "Worker snapshots merged into this fleet document",
        "series": [{"labels": {}, "value": len(workers_meta)}],
    }
    snapshot_series = [
        {"labels": {"worker": meta["label"]},
         "value": meta.get("written_at", 0.0)}
        for meta in sorted(workers_meta, key=lambda m: m["label"])
        if meta.get("written_at") is not None
    ]
    if snapshot_series:
        metrics["fleet_snapshot_unix_seconds"] = {
            "kind": "gauge",
            "help": "Wall-clock time each worker last flushed its snapshot",
            "series": snapshot_series,
        }

    doc = {
        "schema": METRICS_SCHEMA,
        "metrics": metrics,
        "fleet": {"workers": workers_meta, "merged": True},
    }
    return doc, problems


def read_spool(spool: str) -> List[Dict[str, Any]]:
    """All parseable snapshot documents in *spool*, ordered by path."""
    docs = []
    for path in sorted(glob.glob(os.path.join(spool, METRICS_GLOB))):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                docs.append(json.load(fh))
        except (OSError, json.JSONDecodeError):
            # A worker may be mid-rename or already gone; skip, the
            # next scrape sees it.
            continue
    return docs


def aggregate_spool(spool: str) -> Tuple[Dict[str, Any], List[str]]:
    """Merge every snapshot currently in *spool* (see merge rules)."""
    return merge_metrics_docs(read_spool(spool))


# ----------------------------------------------------------------------
# Prometheus rendering straight from a (merged) document
# ----------------------------------------------------------------------


def render_prometheus(doc: Dict[str, Any]) -> str:
    """Prometheus text exposition of a ``repro-metrics/1`` document.

    Mirrors :meth:`MetricsRegistry.to_prometheus` but works on the JSON
    form, which is what the fleet merge produces (there is no live
    registry holding the merged state).
    """
    lines: List[str] = []
    metrics = doc.get("metrics") or {}
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("kind", "untyped")
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in entry.get("series") or []:
            key = tuple(sorted(
                (k, str(v)) for k, v in (series.get("labels") or {}).items()
            ))
            if kind == "histogram":
                cumulative = 0
                for bound, n in zip(entry.get("buckets") or [],
                                    series.get("counts") or []):
                    cumulative += n
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(key, 'le=%s' % _quote(_fmt(bound)))}"
                        f" {cumulative}"
                    )
                count = series.get("count", 0)
                lines.append(
                    f"{name}_bucket"
                    f"{_render_labels(key, 'le=%s' % _quote('+Inf'))} {count}"
                )
                lines.append(f"{name}_sum{_render_labels(key)} "
                             f"{_fmt(series.get('sum', 0.0))}")
                lines.append(f"{name}_count{_render_labels(key)} {count}")
            else:
                lines.append(
                    f"{name}{_render_labels(key)} "
                    f"{_fmt(series.get('value', 0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def serve_metrics_http(spool: str, port: int = 0, host: str = "127.0.0.1"):
    """A daemon-threaded Prometheus scrape endpoint over the spool.

    Every GET re-aggregates the spool, so the scrape always reflects
    the latest worker flushes.  Returns the ``ThreadingHTTPServer``;
    its bound port is ``server.server_address[1]`` (useful with
    ``port=0``) and ``server.shutdown()`` stops it.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            merged, _problems = aggregate_spool(spool)
            body = render_prometheus(merged).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # silence per-request stderr noise
            return None

    server = ThreadingHTTPServer((host, port), Handler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return server


# ----------------------------------------------------------------------
# trace merge + reassembly
# ----------------------------------------------------------------------


def merge_trace_files(
    paths: Iterable[str],
    out_path: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Merge per-process trace streams onto one absolute timeline.

    Each file's streaming header supplies ``wall_epoch`` (the wall
    clock at its tracer's relative zero); every event gains a ``wall``
    key — absolute seconds — and the merged list is sorted by it.
    When *out_path* is given the merged stream is also written as a
    valid ``repro-trace/1`` file (header with a real event count).
    """
    events: List[Dict[str, Any]] = []
    epochs: List[float] = []
    for path in paths:
        wall_epoch = 0.0
        try:
            fh = open(path, "r", encoding="utf-8")
        except OSError:
            continue
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if obj.get("type") == "header":
                    wall_epoch = obj.get("wall_epoch", 0.0) or 0.0
                    epochs.append(wall_epoch)
                    continue
                rel = obj.get("start", obj.get("at", 0.0)) or 0.0
                obj["wall"] = wall_epoch + rel
                events.append(obj)
    events.sort(key=lambda e: e.get("wall", 0.0))
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as out:
            out.write(json.dumps({
                "type": "header", "schema": TRACE_SCHEMA,
                "events": len(events),
                "wall_epoch": min(epochs) if epochs else 0.0,
                "merged_from": len(epochs),
            }, sort_keys=True) + "\n")
            for event in events:
                out.write(json.dumps(event, sort_keys=True, default=str)
                          + "\n")
    return events


def trace_files(spool: str) -> List[str]:
    """The per-process trace streams currently in *spool*."""
    return sorted(glob.glob(os.path.join(spool, TRACE_GLOB)))


def reassemble_request(
    events: Sequence[Dict[str, Any]], trace_id: str,
) -> Dict[str, Any]:
    """One request's cross-layer timeline from merged trace events.

    Layer linkage is by shared attrs, not span parents (the layers run
    on different tasks/threads/processes): the server's request span
    carries ``trace``; the batch span that coalesced it lists the
    member ids under ``traces`` plus a per-worker ``batch`` id; the
    engine execution span carries the same ``batch`` id.  Returns
    ``{"trace", "request", "batch", "engine", "layers"}`` with each
    group sorted on the absolute timeline.
    """
    request: List[Dict[str, Any]] = []
    batch: List[Dict[str, Any]] = []
    for event in events:
        attrs = event.get("attrs") or {}
        if attrs.get("trace") == trace_id:
            request.append(event)
        traces = attrs.get("traces")
        if isinstance(traces, (list, tuple)) and trace_id in traces:
            batch.append(event)
    batch_keys = {
        (event.get("pid"), (event.get("attrs") or {}).get("batch"))
        for event in batch
        if (event.get("attrs") or {}).get("batch") is not None
    }
    # Engine events carry the batch id but neither a request's
    # ``trace`` nor a coalescer's ``traces`` — excluding those keeps
    # sibling requests riding the same batch out of this story.
    engine = [
        event for event in events
        if (event.get("attrs") or {}).get("trace") is None
        and (event.get("attrs") or {}).get("traces") is None
        and (event.get("pid"),
             (event.get("attrs") or {}).get("batch")) in batch_keys
    ]
    order = lambda e: e.get("wall", e.get("start", e.get("at", 0.0)))
    request.sort(key=order)
    batch.sort(key=order)
    engine.sort(key=order)
    return {
        "trace": trace_id,
        "request": request,
        "batch": batch,
        "engine": engine,
        "layers": sum(1 for group in (request, batch, engine) if group),
    }


def registry_from_doc(doc: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a live registry holding a document's counters/gauges.

    Histograms cannot be replayed exactly (only bucket counts survive)
    and are intentionally left out; use :func:`render_prometheus` for
    full-fidelity exposition of a merged document.
    """
    registry = MetricsRegistry()
    for name, entry in (doc.get("metrics") or {}).items():
        kind = entry.get("kind")
        for series in entry.get("series") or []:
            labels = dict(series.get("labels") or {})
            if kind == "counter":
                registry.counter(name, entry.get("help", "")).inc(
                    series.get("value", 0), **labels)
            elif kind == "gauge":
                registry.gauge(name, entry.get("help", "")).set(
                    series.get("value", 0), **labels)
    return registry
