"""Slow-query log and SLO watchdog for the serving tier.

The paper's headline is microsecond span/θ answers (Algorithms 4/5);
in production the interesting queries are the ones that *aren't*.
This module gives the server two tools:

* :class:`SlowQueryLog` — structured JSON lines (one complete
  ``os.write`` per line, O_APPEND-safe across pre-fork workers) for
  every request whose server-side wall time crosses a threshold,
  rate-limited by a token bucket so a latency storm cannot turn the
  log into its own outage.  Each record carries the query shape (op,
  window, θ, tenant), the route through the server (batch id and
  size), the trace id when the client sent one, and the duration — the
  exact tuple needed to go from "p99 regressed" to "these queries,
  this batch shape".
* SLO arithmetic — :func:`histogram_quantile` estimates p50/p95/p99
  from the fixed-bucket ``server_request_seconds`` histogram (same
  linear-interpolation rule Prometheus uses), and :func:`check_slo`
  compares a live/aggregated metrics document against the latency
  baseline recorded in a ``BENCH_*.json`` so ``repro slo`` can exit
  non-zero on burn.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

SLOWLOG_SCHEMA = "repro-slowlog/1"

#: The serving-latency histogram the SLO math reads by default.
LATENCY_METRIC = "server_request_seconds"


class SlowQueryLog:
    """Rate-limited structured log of over-threshold requests.

    ``maybe_record`` is cheap for the common (fast) case: one float
    compare.  Over-threshold requests increment
    ``server_slow_queries_total{op=...}`` unconditionally, then pass a
    token bucket (capacity = ``max_per_sec``, refilled continuously)
    before a line is written — suppressed lines are themselves counted
    (``server_slow_queries_suppressed_total``) so the log's sampling is
    visible, never silent.
    """

    def __init__(self, path, threshold_s: float,
                 max_per_sec: float = 10.0,
                 telemetry=None, worker: Optional[int] = None,
                 clock=time.monotonic):
        self.path = str(path)
        self.threshold_s = float(threshold_s)
        self._clock = clock
        self._capacity = max(1.0, float(max_per_sec))
        self._rate = float(max_per_sec)
        self._tokens = self._capacity
        self._refilled = clock()
        self.worker = worker
        self.pid = os.getpid()
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._slow_total = self._suppressed_total = None
        if telemetry is not None:
            self._slow_total = telemetry.metrics.counter(
                "server_slow_queries_total",
                "Requests over the slow-query threshold",
            )
            self._suppressed_total = telemetry.metrics.counter(
                "server_slow_queries_suppressed_total",
                "Slow-query log lines dropped by rate limiting",
            )

    def _take_token(self) -> bool:
        now = self._clock()
        self._tokens = min(
            self._capacity,
            self._tokens + (now - self._refilled) * self._rate,
        )
        self._refilled = now
        if self._tokens < 1.0:
            return False
        self._tokens -= 1.0
        return True

    def maybe_record(self, duration_s: float, op: str = "",
                     **fields: Any) -> bool:
        """Log the request if slow; returns True when a line was written."""
        if duration_s < self.threshold_s:
            return False
        if self._slow_total is not None:
            self._slow_total.inc(op=op or "unknown")
        if not self._take_token():
            if self._suppressed_total is not None:
                self._suppressed_total.inc()
            return False
        record = {
            "type": "slow_query",
            "schema": SLOWLOG_SCHEMA,
            "unix_time": time.time(),
            "duration_ms": duration_s * 1000.0,
            "threshold_ms": self.threshold_s * 1000.0,
            "op": op,
            "pid": self.pid,
            "worker": self.worker,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        return True

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


def read_slowlog(path) -> List[Dict[str, Any]]:
    """Parse a slow-query log back into records (tolerant of tails)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if obj.get("type") == "slow_query":
                records.append(obj)
    return records


# ----------------------------------------------------------------------
# SLO arithmetic over fixed-bucket histograms
# ----------------------------------------------------------------------


def histogram_quantile(buckets: Sequence[float], counts: Sequence[int],
                       q: float,
                       observed_max: Optional[float] = None,
                       ) -> Optional[float]:
    """Estimate the *q*-quantile of a cumulative-bucket histogram.

    *buckets* are the finite upper bounds, *counts* the per-bucket
    (non-cumulative) tallies with the implicit ``+Inf`` bucket last —
    exactly the ``repro-metrics/1`` histogram series shape.  Linear
    interpolation inside the landing bucket (Prometheus's rule); a
    quantile landing in ``+Inf`` returns *observed_max* when known,
    else the largest finite bound.  ``None`` when the histogram is
    empty.
    """
    total = sum(counts)
    if total <= 0:
        return None
    target = q * total
    cumulative = 0.0
    for i, bound in enumerate(buckets):
        previous = cumulative
        cumulative += counts[i]
        if cumulative >= target:
            lower = buckets[i - 1] if i > 0 else 0.0
            if counts[i] == 0:
                return bound
            return lower + (bound - lower) * (target - previous) / counts[i]
    if observed_max is not None and observed_max != float("-inf"):
        return float(observed_max)
    return float(buckets[-1]) if buckets else None


def extract_latency_quantiles(
    doc: Dict[str, Any],
    metric: str = LATENCY_METRIC,
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
) -> Dict[str, Any]:
    """Fleet-wide latency quantiles from a metrics document.

    Sums the named histogram's bucket counts across every series (all
    ops, all label sets) and estimates each requested quantile.
    Returns ``{"count": N, "p50": seconds|None, ...}``; all-``None``
    quantiles with ``count == 0`` when the metric is absent or empty.
    """
    entry = (doc.get("metrics") or {}).get(metric) or {}
    buckets = entry.get("buckets") or []
    combined: Optional[List[int]] = None
    observed_max = float("-inf")
    total = 0
    for series in entry.get("series") or []:
        counts = series.get("counts") or []
        if combined is None:
            combined = list(counts)
        elif len(counts) == len(combined):
            combined = [a + b for a, b in zip(combined, counts)]
        observed_max = max(observed_max, series.get("max", float("-inf")))
        total += series.get("count", 0)
    out: Dict[str, Any] = {"count": total, "metric": metric}
    for q in quantiles:
        key = f"p{int(round(q * 100))}"
        out[key] = (
            histogram_quantile(buckets, combined, q,
                               observed_max=observed_max)
            if combined else None
        )
    return out


def baseline_latencies(bench_doc: Dict[str, Any]) -> Dict[str, float]:
    """Pull the serving-latency baseline out of a ``repro-bench/1`` doc.

    Returns ``{"p50": ms, "p95": ms, "p99": ms}`` for whichever
    percentiles the document recorded (``serving.serve_latency_*_ms``).
    """
    serving = bench_doc.get("serving") or {}
    out = {}
    for key in ("p50", "p95", "p99"):
        value = serving.get(f"serve_latency_{key}_ms")
        if isinstance(value, (int, float)) and value > 0:
            out[key] = float(value)
    return out


def check_slo(
    metrics_doc: Dict[str, Any],
    bench_doc: Dict[str, Any],
    max_burn_pct: float = 50.0,
    metric: str = LATENCY_METRIC,
    quantile_keys: Sequence[str] = ("p95", "p99"),
) -> Tuple[bool, List[str]]:
    """Compare live latency quantiles against a bench baseline.

    Returns ``(ok, report_lines)``.  For each requested quantile with
    both a live estimate and a baseline, the burn is the relative
    increase in percent; any burn past *max_burn_pct* flips *ok* to
    False.  Missing live data (no traffic, metric absent) also fails —
    an SLO check that silently passes on no data hides outages.
    """
    report: List[str] = []
    live = extract_latency_quantiles(
        metrics_doc, metric=metric,
        quantiles=[int(k[1:]) / 100.0 for k in quantile_keys],
    )
    baseline = baseline_latencies(bench_doc)
    if live["count"] == 0:
        return False, [f"no observations in {metric!r} — nothing to check"]
    ok = True
    compared = 0
    for key in quantile_keys:
        live_s = live.get(key)
        base_ms = baseline.get(key)
        if live_s is None:
            continue
        live_ms = live_s * 1000.0
        if base_ms is None:
            report.append(
                f"{key}: live {live_ms:.3f}ms (no baseline recorded)"
            )
            continue
        compared += 1
        burn = (live_ms - base_ms) / base_ms * 100.0
        line = (f"{key}: live {live_ms:.3f}ms vs baseline {base_ms:.3f}ms "
                f"({burn:+.1f}%, budget {max_burn_pct:g}%)")
        if burn > max_burn_pct:
            ok = False
            line += "  BURN"
        report.append(line)
    if compared == 0:
        return False, report + [
            "baseline has no serve_latency_*_ms to compare against"
        ]
    report.append(
        f"{'ok' if ok else 'FAIL'}: {live['count']} observations, "
        f"{compared} quantiles checked"
    )
    return ok, report
