"""Schema validation for exported telemetry documents.

``repro ... --metrics-out`` / ``--trace-out`` promise machine-readable
output; this module is the machine that holds them to it.  Used by the
``make obs-smoke`` CI stage (``python -m repro.obs.validate FILE...``)
and by the test suite.

Validators return a list of problem strings — empty means valid — so
callers can report everything wrong at once instead of failing on the
first field.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Sequence

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.trace import TRACE_SCHEMA

_KINDS = ("counter", "gauge", "histogram")


def validate_metrics_doc(doc: Any) -> List[str]:
    """Problems with a ``repro-metrics/1`` document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {METRICS_SCHEMA!r}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("'metrics' is missing or not an object")
        return problems
    for name, entry in metrics.items():
        where = f"metric {name!r}"
        if not isinstance(entry, dict):
            problems.append(f"{where}: entry is not an object")
            continue
        kind = entry.get("kind")
        if kind not in _KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        series = entry.get("series")
        if not isinstance(series, list):
            problems.append(f"{where}: 'series' is missing or not a list")
            continue
        if kind == "histogram":
            buckets = entry.get("buckets")
            if (not isinstance(buckets, list) or not buckets
                    or any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:]))):
                problems.append(
                    f"{where}: histogram buckets missing or not strictly "
                    "increasing"
                )
                continue
        for i, s in enumerate(series):
            at = f"{where} series[{i}]"
            if not isinstance(s, dict) or not isinstance(
                s.get("labels"), dict
            ):
                problems.append(f"{at}: missing 'labels' object")
                continue
            if kind in ("counter", "gauge"):
                if not isinstance(s.get("value"), (int, float)):
                    problems.append(f"{at}: missing numeric 'value'")
                elif kind == "counter" and s["value"] < 0:
                    problems.append(f"{at}: counter value is negative")
            else:
                counts = s.get("counts")
                if (not isinstance(counts, list)
                        or len(counts) != len(entry["buckets"]) + 1
                        or any(not isinstance(c, int) or c < 0
                               for c in counts)):
                    problems.append(
                        f"{at}: 'counts' must hold "
                        f"{len(entry['buckets']) + 1} non-negative ints "
                        "(one per bucket plus +Inf)"
                    )
                    continue
                if s.get("count") != sum(counts):
                    problems.append(
                        f"{at}: 'count' disagrees with sum of bucket counts"
                    )
                if not isinstance(s.get("sum"), (int, float)):
                    problems.append(f"{at}: missing numeric 'sum'")
    return problems


def validate_trace_events(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Problems with a sequence of trace event dicts (header excluded)."""
    problems: List[str] = []
    seen_ids = set()
    for i, event in enumerate(events):
        at = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{at}: not an object")
            continue
        kind = event.get("type")
        if kind not in ("span", "event"):
            problems.append(f"{at}: unknown type {kind!r}")
            continue
        for key in ("name", "id", "depth", "attrs"):
            if key not in event:
                problems.append(f"{at}: missing {key!r}")
        if not isinstance(event.get("attrs", {}), dict):
            problems.append(f"{at}: 'attrs' is not an object")
        if kind == "span":
            if not isinstance(event.get("dur"), (int, float)) or \
                    event["dur"] < 0:
                problems.append(f"{at}: span missing non-negative 'dur'")
            if not isinstance(event.get("start"), (int, float)):
                problems.append(f"{at}: span missing 'start'")
        else:
            if not isinstance(event.get("at"), (int, float)):
                problems.append(f"{at}: event missing 'at'")
        if "id" in event:
            seen_ids.add(event["id"])
    # Parent links must resolve to *some* recorded id (spans close
    # after their children, so parents appear later in the file).
    for i, event in enumerate(events):
        parent = event.get("parent") if isinstance(event, dict) else None
        if parent is not None and parent not in seen_ids:
            problems.append(f"event[{i}]: parent {parent} never recorded")
    return problems


def validate_trace_file(path) -> List[str]:
    """Validate a JSON-lines trace file, header line included."""
    problems: List[str] = []
    events: List[Dict[str, Any]] = []
    header = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    problems.append(f"line {lineno}: invalid JSON ({exc})")
                    continue
                if isinstance(obj, dict) and obj.get("type") == "header":
                    header = obj
                else:
                    events.append(obj)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if header is None:
        problems.append("missing header line")
    elif header.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"header schema is {header.get('schema')!r}, expected "
            f"{TRACE_SCHEMA!r}"
        )
    elif header.get("events") is not None and \
            header.get("events") != len(events):
        # Streaming headers (AppendSink) cannot know the final count
        # and omit "events"; only a declared count is held to.
        problems.append(
            f"header says {header.get('events')} events but the file holds "
            f"{len(events)}"
        )
    problems.extend(validate_trace_events(events))
    return problems


def validate_file(path) -> List[str]:
    """Validate one exported file, sniffing metrics-JSON vs trace-JSONL."""
    if str(path).endswith((".jsonl", ".ndjson")):
        return validate_trace_file(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except json.JSONDecodeError:
        # More than one JSON document on separate lines: a trace.
        return validate_trace_file(path)
    return validate_metrics_doc(doc)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.obs.validate FILE [FILE...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in args:
        problems = validate_file(path)
        if problems:
            status = 1
            print(f"INVALID {path}")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"ok {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
