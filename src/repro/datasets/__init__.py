"""Dataset stand-ins for the paper's Table II corpus."""

from repro.datasets.paper_example import (
    PAPER_EDGES,
    PAPER_VERTICES,
    paper_example_graph,
)
from repro.datasets.registry import (
    REGISTRY,
    REPRESENTATIVE,
    SPECS,
    DatasetSpec,
    clear_cache,
    dataset_names,
    get_spec,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "SPECS",
    "REGISTRY",
    "REPRESENTATIVE",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "clear_cache",
    "paper_example_graph",
    "PAPER_EDGES",
    "PAPER_VERTICES",
]
