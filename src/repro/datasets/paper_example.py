"""A reconstruction of the paper's running example (Fig. 1).

The figure itself is not part of the paper text we work from, but the
prose pins down many of its edges and reachability facts.  This module
assembles a 12-vertex temporal graph consistent with **every** fact the
text states, and the test suite asserts each of them:

* ``⟨v6, v2, 5⟩, ⟨v2, v1, 6⟩, ⟨v1, v10, 8⟩`` is a time-respecting path,
  so ``v6`` reaches ``v10`` under the journey model (Section I);
* ``v1 ⇝[3,5] v8`` via ``⟨v1, v5, 5⟩, ⟨v5, v8, 4⟩`` (Example 1);
* ``v1 ⇝[2,4] v3`` (Section II example for Definition 1);
* ``v1`` 3-reaches ``v12`` in ``[1, 5]`` through subinterval ``[3, 5]``
  (Example 2);
* ``N_out(v5) = {⟨v3, 4⟩, ⟨v8, 1⟩, ⟨v8, 4⟩}`` (Example 5);
* ``v8`` has exactly one out-neighbor ``⟨v4, 6⟩`` (Example 6);
* ``v1 → v6`` at times 2 and 7 (Table I lists ``L_in(v6) =
  {(v1,2,2), (v1,7,7)}``).

Edges not pinned down by the prose are chosen minimally to satisfy the
remaining facts (``v1 → v5`` at 3 gives the ``[2, 4]`` path to ``v3``;
``v3 → v12`` at 5 realises Example 2).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.temporal_graph import TemporalGraph

#: The reconstructed edge set of Fig. 1.
PAPER_EDGES: List[Tuple[str, str, int]] = [
    ("v6", "v2", 5),   # Section I: time-respecting path hop 1
    ("v2", "v1", 6),   # hop 2
    ("v1", "v10", 8),  # hop 3
    ("v1", "v5", 5),   # Example 1 hop 1
    ("v5", "v8", 4),   # Example 1 hop 2 / Example 5
    ("v5", "v8", 1),   # Example 5
    ("v5", "v3", 4),   # Example 5
    ("v8", "v4", 6),   # Example 6: v8's only out-neighbor
    ("v1", "v6", 2),   # Table I: L_in(v6) triplet (v1, 2, 2)
    ("v1", "v6", 7),   # Table I: L_in(v6) triplet (v1, 7, 7)
    ("v1", "v5", 3),   # realises v1 ⇝[2,4] v3 (via v5 → v3 at 4)
    ("v3", "v12", 5),  # realises Example 2: v1 3-reaches v12 in [1, 5]
    ("v7", "v9", 6),   # periphery: keeps all 12 vertices non-isolated
    ("v9", "v11", 3),
    ("v11", "v7", 4),
]

#: Vertex names in subscript order (the paper's alphabetical order).
PAPER_VERTICES: List[str] = [f"v{i}" for i in range(1, 13)]


def paper_example_graph() -> TemporalGraph:
    """The reconstructed Fig. 1 temporal graph (directed, 12 vertices)."""
    graph = TemporalGraph(directed=True)
    for name in PAPER_VERTICES:
        graph.add_vertex(name)
    for u, v, t in PAPER_EDGES:
        graph.add_edge(u, v, t)
    return graph.freeze()
