"""Materialising the dataset corpus to disk.

The 17 Table II stand-ins are generated on demand; for interop with
external tools (or to pin a corpus snapshot alongside results) they can
be exported as edge-list files plus a manifest.  The exported files
read back bit-identically through :func:`repro.graph.io.read_graph`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.datasets.registry import dataset_names, get_spec, load_dataset
from repro.errors import DatasetError
from repro.graph.io import read_graph, write_edgelist
from repro.graph.statistics import graph_stats

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"


def export_datasets(
    directory: PathLike,
    names: Optional[List[str]] = None,
    compress: bool = True,
) -> Dict[str, Path]:
    """Write each dataset as an edge list under *directory*.

    Returns ``{name: file path}``.  A ``manifest.json`` records every
    spec and the generated statistics so a snapshot is self-describing.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    chosen = names if names is not None else dataset_names()
    written: Dict[str, Path] = {}
    manifest = {}
    suffix = ".txt.gz" if compress else ".txt"
    for name in chosen:
        spec = get_spec(name)
        graph = load_dataset(name)
        path = directory / f"{name}{suffix}"
        write_edgelist(graph, path)
        written[name] = path
        stats = graph_stats(graph, name=name)
        manifest[name] = {
            "file": path.name,
            "category": spec.category,
            "model": spec.model,
            "seed": spec.seed,
            "directed": spec.directed,
            "n": stats.num_vertices,
            "m": stats.num_edges,
            "theta_G": stats.lifetime,
        }
    with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    return written


def load_exported(directory: PathLike, name: str):
    """Read one dataset back from an exported snapshot.

    Uses the manifest for directedness (edge lists do not carry it in
    a machine-checked way) and verifies the recorded edge count.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise DatasetError(f"{directory} has no {MANIFEST_NAME}")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if name not in manifest:
        known = ", ".join(sorted(manifest))
        raise DatasetError(
            f"dataset {name!r} not in snapshot manifest; present: {known}"
        )
    entry = manifest[name]
    graph = read_graph(directory / entry["file"], directed=entry["directed"])
    if graph.num_edges != entry["m"]:
        raise DatasetError(
            f"snapshot of {name!r} is corrupt: {graph.num_edges} edges on "
            f"disk, manifest says {entry['m']}"
        )
    return graph
