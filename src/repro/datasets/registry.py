"""The 17 Table II dataset stand-ins.

The paper evaluates on seventeen public SNAP/KONECT temporal graphs
(Table II), four of which — **Enron, Youtube, DBLP and Flickr** — serve
as the representative datasets of Figures 7–9 (named explicitly in
Section VI; Chess is named as the fastest-indexing dataset).  This
environment has no network access and pure-Python index construction
cannot ingest million-edge graphs in reasonable time (see DESIGN.md
"Substitutions"), so each dataset is replaced by a *synthetic stand-in*
that preserves what drives the algorithms' relative behaviour:

* the category's structural model (cascading email bursts, power-law
  social ties, time-sliced collaboration communities, near-uniform
  game pairings);
* directedness, matching the original (`M` column of Table II);
* the *ordering* of dataset sizes (chess smallest … flickr largest),
  so cross-dataset trends in Figs. 4–6 keep their shape.

Every stand-in is deterministic (fixed seed) and carries its Table II
row via :func:`repro.graph.statistics.graph_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import DatasetError
from repro.graph import generators
from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one Table II stand-in."""

    name: str
    category: str
    directed: bool
    model: str  # generator key in repro.graph.generators.GENERATORS
    num_vertices: int
    num_edges: int
    lifetime: int
    seed: int

    def load(self) -> TemporalGraph:
        """Generate the stand-in graph (deterministic for the spec)."""
        factory = generators.GENERATORS[self.model]
        return factory(
            self.num_vertices,
            self.num_edges,
            self.lifetime,
            directed=self.directed,
            seed=self.seed,
        )


def _spec(name, category, directed, model, n, m, lifetime, seed) -> DatasetSpec:
    return DatasetSpec(name, category, directed, model, n, m, lifetime, seed)


#: All 17 datasets, ordered smallest to largest as in the paper's plots.
SPECS: Tuple[DatasetSpec, ...] = (
    _spec("chess",          "game",           True,  "uniform",       300,  1500,  60, 101),
    _spec("wiki-elections", "voting",         True,  "preferential",  350,  2000,  80, 102),
    _spec("college-msg",    "messaging",      True,  "preferential",  400,  2500, 120, 103),
    _spec("email-eu",       "email",          True,  "cascade",       500,  3500, 150, 104),
    _spec("enron",          "email",          True,  "cascade",       800,  5000, 200, 105),
    _spec("digg",           "social news",    True,  "preferential",  700,  4500, 150, 106),
    _spec("slashdot",       "social news",    True,  "preferential",  800,  5000, 180, 107),
    _spec("epinions",       "trust",          True,  "preferential",  900,  5500, 200, 108),
    _spec("facebook-wall",  "social",         True,  "preferential", 1000,  6000, 250, 109),
    _spec("math-overflow",  "q&a",            True,  "preferential", 1000,  7000, 250, 110),
    _spec("ask-ubuntu",     "q&a",            True,  "preferential", 1200,  8000, 300, 111),
    _spec("super-user",     "q&a",            True,  "preferential", 1400,  9000, 350, 112),
    _spec("wiki-talk",      "communication",  True,  "cascade",      1600, 10000, 400, 113),
    _spec("prosper-loans",  "economic",       True,  "preferential", 1200,  8000, 300, 114),
    _spec("dblp",           "co-authorship",  False, "community",    1500,  9000, 300, 115),
    _spec("youtube",        "friendship",     False, "preferential", 2000, 11000, 400, 116),
    _spec("flickr",         "friendship",     True,  "preferential", 2500, 14000, 500, 117),
)

REGISTRY: Dict[str, DatasetSpec] = {spec.name: spec for spec in SPECS}

#: The four representative datasets of Figures 7, 8 and 9.
REPRESENTATIVE: Tuple[str, ...] = ("enron", "youtube", "dblp", "flickr")

_cache: Dict[str, TemporalGraph] = {}


def dataset_names() -> List[str]:
    """All 17 dataset names, smallest to largest."""
    return [spec.name for spec in SPECS]


def get_spec(name: str) -> DatasetSpec:
    """Spec by name; raises :class:`DatasetError` for unknown names."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(dataset_names())
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None


def load_dataset(name: str, cache: bool = True) -> TemporalGraph:
    """Generate (or fetch from the process-level cache) a stand-in graph.

    The cache matters because experiment modules load the same datasets
    repeatedly; generation is deterministic, so sharing is safe as long
    as callers treat graphs as read-only (all library transforms copy).
    """
    if cache and name in _cache:
        return _cache[name]
    graph = get_spec(name).load()
    if cache:
        _cache[name] = graph
    return graph


def clear_cache() -> None:
    """Drop all cached dataset graphs (tests use this for isolation)."""
    _cache.clear()
