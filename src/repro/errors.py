"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A temporal graph was constructed or used inconsistently."""


class UnknownVertexError(GraphError, KeyError):
    """A vertex id was referenced that is not part of the graph.

    Inherits from :class:`KeyError` because lookup-by-vertex is
    dictionary-like; code written against plain mappings keeps working.
    """

    def __init__(self, vertex: object):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # KeyError would repr() the args tuple
        return f"unknown vertex: {self.vertex!r}"


class FrozenGraphError(GraphError):
    """A mutation was attempted on a graph that has been frozen."""


class InvalidIntervalError(ReproError, ValueError):
    """A time interval was malformed (e.g. start after end)."""


class UnsupportedIntervalError(ReproError):
    """A query interval exceeds what the index was built to answer.

    Raised when a :class:`~repro.core.index.TILLIndex` built with a finite
    length cap ``vartheta`` receives a query whose window is wider than
    the cap and no online fallback was requested.
    """


class IndexBuildError(ReproError):
    """Index construction failed or was configured inconsistently."""


class LabelInvariantError(ReproError):
    """A built index violates a structural label invariant.

    Raised by :func:`repro.fuzz.invariants.check_labels` when a
    :class:`~repro.core.labels.LabelSet` breaks one of the properties
    the query algorithms silently rely on (hub ranks ascending,
    chronologically sorted antichain groups, consistent offsets, ...).
    Signals either a construction bug or post-build corruption.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        preview = "; ".join(self.violations[:3])
        more = len(self.violations) - 3
        if more > 0:
            preview += f"; ... and {more} more"
        super().__init__(
            f"{len(self.violations)} label invariant violation(s): {preview}"
        )


class IndexFormatError(ReproError):
    """A serialized index file is corrupt or from an incompatible version."""


class DatasetError(ReproError):
    """A dataset name is unknown or a dataset file cannot be parsed."""


class ExperimentError(ReproError):
    """An experiment was configured with invalid parameters."""
