"""Query workload generation — the paper's Section VI protocol."""

from repro.workloads.queries import (
    QueryWorkload,
    SpanQuery,
    ThetaQuery,
    make_span_workload,
    make_theta_workload,
)

__all__ = [
    "QueryWorkload",
    "SpanQuery",
    "ThetaQuery",
    "make_span_workload",
    "make_theta_workload",
]
