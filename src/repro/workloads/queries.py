"""Span- and θ-reachability query workloads.

Section VI-A of the paper describes the evaluation protocol precisely:

    *"we randomly pick 100 vertex pairs in each graph.  For each vertex
    pair, we randomly generate subintervals of* ``[1, ϑ_G]`` *and only
    keep intervals if the conditions in Lemma 9 and Lemma 10 are
    satisfied.  We repeat this step until 10 intervals are found.  [...]
    As a result, we fully prepare 1000 span-reachability queries."*

Lemma 9/10 require the source to have an out-edge and the target an
in-edge inside the window — without them every algorithm answers
``False`` immediately, so unfiltered random intervals would benchmark
the prefilter instead of the algorithms.

Section VI-C reuses the same pairs/intervals for θ-reachability,
setting θ to a fraction of each interval's length (10%–90%).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.intervals import Interval
from repro.errors import ExperimentError
from repro.graph.temporal_graph import TemporalGraph, Vertex


@dataclass(frozen=True)
class SpanQuery:
    """One span-reachability query instance."""

    u: Vertex
    v: Vertex
    interval: Interval


@dataclass(frozen=True)
class ThetaQuery:
    """One θ-reachability query instance."""

    u: Vertex
    v: Vertex
    interval: Interval
    theta: int


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of queries over one graph."""

    queries: Tuple
    seed: int

    def __iter__(self) -> Iterator:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def _prefilters_pass(
    graph: TemporalGraph, ui: int, vi: int, window: Interval
) -> bool:
    """The Lemma 9/10 conditions the paper uses to keep an interval."""
    return graph.has_out_edge_in(ui, window.start, window.end) and \
        graph.has_in_edge_in(vi, window.start, window.end)


def make_span_workload(
    graph: TemporalGraph,
    num_pairs: int = 100,
    intervals_per_pair: int = 10,
    seed: int = 0,
    max_attempts_per_interval: int = 2000,
) -> QueryWorkload:
    """Generate the Section VI-A workload for *graph*.

    Random vertex pairs (``u ≠ v``), then per pair random subintervals
    of ``[min_time, max_time]`` kept only when the Lemma 9/10 prechecks
    pass.  Pairs for which no interval passes within
    ``max_attempts_per_interval`` draws are redrawn; a graph too sparse
    to yield any workload raises :class:`ExperimentError`.
    """
    if graph.num_vertices < 2 or graph.min_time is None:
        raise ExperimentError("workload generation needs >= 2 vertices and edges")
    if not graph.frozen:
        graph.freeze()
    rng = random.Random(seed)
    lo, hi = graph.min_time, graph.max_time
    queries: List[SpanQuery] = []
    n = graph.num_vertices
    pair_attempts = 0
    pairs_done = 0
    while pairs_done < num_pairs:
        pair_attempts += 1
        if pair_attempts > 50 * num_pairs:
            raise ExperimentError(
                "could not generate the requested workload: graph appears too "
                "sparse for the Lemma 9/10 filters"
            )
        ui = rng.randrange(n)
        vi = rng.randrange(n)
        if ui == vi:
            continue
        found: List[Interval] = []
        for _ in range(max_attempts_per_interval):
            if len(found) == intervals_per_pair:
                break
            a = rng.randint(lo, hi)
            b = rng.randint(lo, hi)
            window = Interval(min(a, b), max(a, b))
            if _prefilters_pass(graph, ui, vi, window):
                found.append(window)
        if len(found) < intervals_per_pair:
            continue  # redraw the pair, as the paper's protocol implies
        u, v = graph.label_of(ui), graph.label_of(vi)
        queries.extend(SpanQuery(u, v, w) for w in found)
        pairs_done += 1
    return QueryWorkload(queries=tuple(queries), seed=seed)


def make_theta_workload(
    graph: TemporalGraph,
    theta_fraction: float,
    num_pairs: int = 100,
    intervals_per_pair: int = 10,
    seed: int = 0,
) -> QueryWorkload:
    """The Section VI-C workload: the span workload with θ set to
    ``theta_fraction`` of each interval's length (at least 1)."""
    if not 0.0 < theta_fraction <= 1.0:
        raise ExperimentError(
            f"theta_fraction must be in (0, 1], got {theta_fraction}"
        )
    base = make_span_workload(
        graph,
        num_pairs=num_pairs,
        intervals_per_pair=intervals_per_pair,
        seed=seed,
    )
    queries = tuple(
        ThetaQuery(
            q.u,
            q.v,
            q.interval,
            max(1, int(q.interval.length * theta_fraction)),
        )
        for q in base
    )
    return QueryWorkload(queries=queries, seed=seed)
