"""Extension A3 — streaming maintenance cost (DESIGN.md).

Times the ingest of an edge stream under the incremental delta-buffer
index versus the rebuild-per-edge policy, plus the query paths on a
dirty (delta-carrying) index.  Expected: incremental ingest orders of
magnitude cheaper than rebuild-per-edge; dirty queries slower than
clean indexed queries but far below a full rebuild.
"""

import random

import pytest

from repro import TILLIndex, TemporalGraph
from repro.core.incremental import IncrementalTILLIndex

from benchmarks.conftest import get_graph

DATASET = "chess"
STREAM = 100


def _split(graph, num_stream, seed=0):
    rng = random.Random(seed)
    edges = list(graph.edges())
    rng.shuffle(edges)
    base = TemporalGraph(directed=graph.directed)
    for label in graph.vertices():
        base.add_vertex(label)
    for u, v, t in edges[:-num_stream]:
        base.add_edge(u, v, t)
    return base.freeze(), edges[-num_stream:]


def test_incremental_ingest(benchmark):
    graph = get_graph(DATASET)
    base, stream = _split(graph, STREAM)

    def ingest():
        inc = IncrementalTILLIndex(base, rebuild_threshold=64)
        for u, v, t in stream:
            inc.add_edge(u, v, t)
        return inc.rebuilds

    rebuilds = benchmark.pedantic(ingest, rounds=1, iterations=1)
    benchmark.extra_info["stream_edges"] = STREAM
    benchmark.extra_info["rebuilds"] = rebuilds


def test_rebuild_per_edge_ingest(benchmark):
    graph = get_graph(DATASET)
    base, stream = _split(graph, STREAM)
    # Time a representative slice (full replay would dominate the suite).
    slice_size = 10

    def ingest():
        mirror = base.copy(freeze=False)
        for u, v, t in stream[:slice_size]:
            mirror.add_edge(u, v, t)
            TILLIndex.build(mirror.copy())

    benchmark.pedantic(ingest, rounds=1, iterations=1)
    benchmark.extra_info["stream_edges"] = slice_size
    benchmark.extra_info["note"] = "per-edge full rebuilds, 10-edge slice"


def test_dirty_query_latency(benchmark):
    graph = get_graph(DATASET)
    base, stream = _split(graph, STREAM)
    inc = IncrementalTILLIndex(base, rebuild_threshold=10_000)  # never fold
    for u, v, t in stream:
        inc.add_edge(u, v, t)
    rng = random.Random(1)
    labels = list(graph.vertices())
    lo, hi = graph.min_time, graph.max_time
    queries = []
    for _ in range(50):
        qu, qv = rng.sample(labels, 2)
        a, b = rng.randint(lo, hi), rng.randint(lo, hi)
        queries.append((qu, qv, (min(a, b), max(a, b))))

    def run():
        hits = 0
        for qu, qv, window in queries:
            if inc.span_reachable(qu, qv, window):
                hits += 1
        return hits

    hits = benchmark(run)
    benchmark.extra_info["delta_edges"] = inc.delta_size
    benchmark.extra_info["positive"] = hits
