"""Figure 7 — construction time and index size under a varying ϑ cap.

One pedantic build per (representative dataset, ratio).  Paper shape:
both curves rise gently and flatten toward ϑ = ϑ_G; size barely moves.
To bound total benchmark time the sweep runs on the two cheaper
representative datasets (Enron, DBLP); the experiment module
(`repro.experiments.fig7`) covers all four.
"""

import pytest

from repro import TILLIndex

from benchmarks.conftest import get_graph

DATASETS = ["enron", "dblp"]
RATIOS = [0.2, 0.6, 1.0]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("ratio", RATIOS)
def test_build_with_vartheta(benchmark, dataset, ratio):
    graph = get_graph(dataset)
    cap = None if ratio >= 1.0 else max(1, int(graph.lifetime * ratio))

    def build():
        return TILLIndex.build(graph, vartheta=cap)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["vartheta_ratio"] = ratio
    benchmark.extra_info["vartheta"] = cap if cap is not None else graph.lifetime
    benchmark.extra_info["entries"] = index.labels.total_entries()
    benchmark.extra_info["index_bytes"] = index.labels.estimated_bytes()
