"""Benchmarks of the serving layer (:mod:`repro.serve`).

Not a paper artefact — these pin down the three throughput tiers the
``repro bench`` harness reports: the scalar facade loop, the amortized
batch path (cache disabled), and the warm result cache.  The serving
workload is the hot-source shape from :mod:`repro.serve.bench`, not
the paper's Section VI protocol.
"""

from repro.serve.bench import make_serving_batch
from repro.serve.engine import QueryEngine

from benchmarks.conftest import get_graph, get_index

DATASET = "enron"
BATCH_SIZE = 2000


def _batch(graph):
    return make_serving_batch(graph, BATCH_SIZE, hot_sources=12,
                              target_pool=60, seed=0)


def test_span_scalar_loop(benchmark):
    graph = get_graph(DATASET)
    index = get_index(DATASET)
    batch = _batch(graph)
    window = (graph.min_time, graph.max_time)
    benchmark(lambda: [index.span_reachable(u, v, window)
                       for u, v in batch])


def test_span_batch_engine_uncached(benchmark):
    graph = get_graph(DATASET)
    engine = QueryEngine(get_index(DATASET), cache_size=0)
    batch = _batch(graph)
    window = (graph.min_time, graph.max_time)
    benchmark(lambda: engine.span_many(batch, window))


def test_span_batch_engine_warm_cache(benchmark):
    graph = get_graph(DATASET)
    engine = QueryEngine(get_index(DATASET), cache_size=4 * BATCH_SIZE)
    batch = _batch(graph)
    window = (graph.min_time, graph.max_time)
    engine.span_many(batch, window)  # warm
    benchmark(lambda: engine.span_many(batch, window))


def test_theta_batch_engine(benchmark):
    graph = get_graph(DATASET)
    engine = QueryEngine(get_index(DATASET), cache_size=0)
    batch = _batch(graph)
    window = (graph.min_time, graph.max_time)
    theta = max(1, graph.lifetime // 3)
    benchmark(lambda: engine.theta_many(batch, window, theta))
