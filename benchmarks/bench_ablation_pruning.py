"""Ablation A2 — Lemma 9/10 query prefilters (DESIGN.md).

Measures Span-Reach batches with the prefilters on and off, under the
paper's filtered workload (checks always pass: pure overhead) and a
fully random workload (checks often fail: the prefilter should win).
"""

import random

import pytest

from repro.core.intervals import Interval
from repro.core.queries import span_reachable

from benchmarks.conftest import get_graph, get_index

DATASET = "enron"


def _random_queries(graph, count, seed=0):
    rng = random.Random(seed)
    n = graph.num_vertices
    lo, hi = graph.min_time, graph.max_time
    out = []
    for _ in range(count):
        a, b = rng.randint(lo, hi), rng.randint(lo, hi)
        out.append(
            (rng.randrange(n), rng.randrange(n), Interval(min(a, b), max(a, b)))
        )
    return out


@pytest.mark.parametrize("prefilter", [True, False],
                         ids=["prefilter-on", "prefilter-off"])
@pytest.mark.parametrize("regime", ["filtered", "unfiltered"])
def test_prefilter_ablation(benchmark, prefilter, regime):
    graph = get_graph(DATASET)
    index = get_index(DATASET)
    rank, labels = index.order.rank, index.labels
    if regime == "filtered":
        from repro.workloads import make_span_workload

        queries = [
            (graph.index_of(q.u), graph.index_of(q.v), q.interval)
            for q in make_span_workload(graph, num_pairs=50, seed=0)
        ]
    else:
        queries = _random_queries(graph, 500)

    def run():
        hits = 0
        for ui, vi, window in queries:
            if span_reachable(
                graph, labels, rank, ui, vi, window, prefilter=prefilter
            ):
                hits += 1
        return hits

    hits = benchmark(run)
    benchmark.extra_info["regime"] = regime
    benchmark.extra_info["prefilter"] = prefilter
    benchmark.extra_info["positive"] = hits
