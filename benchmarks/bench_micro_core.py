"""Micro-benchmarks of the core primitives.

Not a paper artefact — these isolate the inner loops the figures are
built from so performance regressions are attributable: skyline
insertion (SRT search), single-query label merge (Algorithm 4), the
two-pointer θ pass (Algorithm 5), and the Lemma 9/10 prefilter.
"""

import random

import pytest

from repro.core.intervals import Interval, SkylineSet
from repro.core.queries import span_reachable, theta_reachable

from benchmarks.conftest import get_graph, get_index

DATASET = "enron"


def test_skyline_insertion(benchmark):
    rng = random.Random(0)
    items = [
        (s, s + rng.randint(0, 40))
        for s in (rng.randint(0, 500) for _ in range(2000))
    ]

    def run():
        sky = SkylineSet()
        for item in items:
            sky.add(item)
        return len(sky)

    benchmark(run)


def test_single_span_query_latency(benchmark):
    graph = get_graph(DATASET)
    index = get_index(DATASET)
    rank, labels = index.order.rank, index.labels
    rng = random.Random(1)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(200)]
    window = Interval(graph.min_time, graph.max_time)

    def run():
        hits = 0
        for ui, vi in pairs:
            if span_reachable(graph, labels, rank, ui, vi, window):
                hits += 1
        return hits

    benchmark(run)


def test_single_theta_query_latency(benchmark):
    graph = get_graph(DATASET)
    index = get_index(DATASET)
    rank, labels = index.order.rank, index.labels
    rng = random.Random(2)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(200)]
    window = Interval(graph.min_time, graph.max_time)
    theta = max(1, graph.lifetime // 10)

    def run():
        hits = 0
        for ui, vi in pairs:
            if theta_reachable(graph, labels, rank, ui, vi, window, theta):
                hits += 1
        return hits

    benchmark(run)


def test_prefilter_check(benchmark):
    graph = get_graph(DATASET)
    rng = random.Random(3)
    n = graph.num_vertices
    lo, hi = graph.min_time, graph.max_time
    probes = [
        (rng.randrange(n), rng.randint(lo, hi), rng.randint(lo, hi))
        for _ in range(2000)
    ]

    def run():
        hits = 0
        for ui, a, b in probes:
            if graph.has_out_edge_in(ui, min(a, b), max(a, b)):
                hits += 1
        return hits

    benchmark(run)
