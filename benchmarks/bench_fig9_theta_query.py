"""Figure 9 — θ-reachability query time, ES-Reach vs ES-Reach*.

Batches of Section VI-C queries per (representative dataset, θ
fraction).  Paper shape: ES-Reach* at or below ES-Reach for every
fraction, the two converging as θ approaches the interval length.
"""

import pytest

from repro.core.queries import theta_reachable, theta_reachable_naive
from repro.datasets import REPRESENTATIVE

from benchmarks.conftest import get_graph, get_index

FRACTIONS = [0.1, 0.5, 0.9]


@pytest.mark.parametrize("dataset", REPRESENTATIVE)
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_es_reach_naive(benchmark, dataset, fraction, theta_workloads):
    graph = get_graph(dataset)
    index = get_index(dataset)
    rank, labels = index.order.rank, index.labels
    queries = theta_workloads[dataset][fraction]

    def run():
        hits = 0
        for ui, vi, window, theta in queries:
            if theta_reachable_naive(graph, labels, rank, ui, vi, window, theta):
                hits += 1
        return hits

    hits = benchmark(run)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["theta_fraction"] = fraction
    benchmark.extra_info["positive"] = hits


@pytest.mark.parametrize("dataset", REPRESENTATIVE)
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_es_reach_star(benchmark, dataset, fraction, theta_workloads):
    graph = get_graph(dataset)
    index = get_index(dataset)
    rank, labels = index.order.rank, index.labels
    queries = theta_workloads[dataset][fraction]

    def run():
        hits = 0
        for ui, vi, window, theta in queries:
            if theta_reachable(graph, labels, rank, ui, vi, window, theta):
                hits += 1
        return hits

    hits = benchmark(run)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["theta_fraction"] = fraction
    benchmark.extra_info["positive"] = hits


@pytest.mark.parametrize("dataset", REPRESENTATIVE)
def test_answers_agree(dataset, theta_workloads):
    """Validity guard: both θ algorithms answer identically."""
    graph = get_graph(dataset)
    index = get_index(dataset)
    rank, labels = index.order.rank, index.labels
    for fraction, queries in theta_workloads[dataset].items():
        for ui, vi, window, theta in queries[:100]:
            assert theta_reachable(graph, labels, rank, ui, vi, window, theta) \
                == theta_reachable_naive(
                    graph, labels, rank, ui, vi, window, theta
                )
