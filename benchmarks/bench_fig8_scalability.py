"""Figure 8 — scalability: index construction on sampled graphs.

Vertex- and edge-sampled builds at 20/60/100% on two representative
datasets (the experiment module covers all four at five ratios).
Paper shape: build time roughly linear in the sampling ratio.
"""

import pytest

from repro import TILLIndex
from repro.graph.sampling import sample_edges, sample_vertices

from benchmarks.conftest import get_graph

DATASETS = ["enron", "dblp"]
RATIOS = [0.2, 0.6, 1.0]
SAMPLERS = {"vertex": sample_vertices, "edge": sample_edges}


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", sorted(SAMPLERS))
@pytest.mark.parametrize("ratio", RATIOS)
def test_build_on_sample(benchmark, dataset, mode, ratio):
    graph = get_graph(dataset)
    sample = SAMPLERS[mode](graph, ratio, seed=0)

    def build():
        return TILLIndex.build(sample)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["ratio"] = ratio
    benchmark.extra_info["n"] = sample.num_vertices
    benchmark.extra_info["m"] = sample.num_edges
    benchmark.extra_info["entries"] = index.labels.total_entries()
