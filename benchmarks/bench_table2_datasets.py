"""Table II — dataset statistics generation.

Times graph generation plus statistics for every stand-in and attaches
the Table II row to ``extra_info`` so a benchmark run doubles as the
table artefact.
"""

import pytest

from repro.datasets import dataset_names, get_spec, load_dataset
from repro.graph.statistics import graph_stats


@pytest.mark.parametrize("dataset", dataset_names())
def test_dataset_stats(benchmark, dataset):
    spec = get_spec(dataset)

    def generate_and_measure():
        graph = load_dataset(dataset, cache=False)
        return graph_stats(graph, name=dataset)

    stats = benchmark.pedantic(generate_and_measure, rounds=1, iterations=1)
    benchmark.extra_info.update(stats.as_row())
    benchmark.extra_info["category"] = spec.category
    benchmark.extra_info["model"] = spec.model
