"""Ablation A1 — vertex-ordering strategies (DESIGN.md).

Builds the index under each ordering strategy on a mid-size dataset,
recording build time and index size.  Expected: the paper's
degree-product order produces the smallest index; random/identity
inflate it.
"""

import pytest

from repro import TILLIndex
from repro.core.ordering import ORDERINGS

from benchmarks.conftest import get_graph

DATASET = "enron"


@pytest.mark.parametrize("strategy", sorted(ORDERINGS))
def test_build_under_ordering(benchmark, strategy):
    graph = get_graph(DATASET)

    def build():
        return TILLIndex.build(graph, ordering=strategy)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = DATASET
    benchmark.extra_info["ordering"] = strategy
    benchmark.extra_info["entries"] = index.labels.total_entries()


def test_degree_product_is_smallest():
    """Validity check for the paper's Section IV-A design choice."""
    graph = get_graph(DATASET)
    sizes = {
        strategy: TILLIndex.build(graph, ordering=strategy)
        .labels.total_entries()
        for strategy in ("degree-product", "random", "identity")
    }
    assert sizes["degree-product"] <= sizes["random"]
    assert sizes["degree-product"] <= sizes["identity"]
