"""Shared fixtures for the benchmark suite.

The benchmarks mirror DESIGN.md's per-experiment index: one module per
paper table/figure plus the two ablations and a micro-benchmark module.
Expensive artefacts (graphs, built indexes, workloads) are session-
scoped so each is created once per run.

Dataset subsets: query benchmarks run on a six-dataset ladder (smallest
plus the paper's four representative datasets plus the largest);
construction benchmarks that need the *basic* builder only use the two
smallest datasets, mirroring the paper's DNF handling for slow builds.
"""

from __future__ import annotations

import pytest

from repro import TILLIndex
from repro.datasets import REPRESENTATIVE, load_dataset
from repro.workloads import make_span_workload, make_theta_workload

#: Smallest dataset, the four representative ones, and the largest.
LADDER = ["chess", "email-eu", "enron", "dblp", "youtube", "flickr"]

#: Datasets small enough to run the basic (Algorithm 2) builder on.
BASIC_SAFE = ["chess", "college-msg"]

_graphs = {}
_indexes = {}


def get_graph(name: str):
    if name not in _graphs:
        _graphs[name] = load_dataset(name)
    return _graphs[name]


def get_index(name: str) -> TILLIndex:
    if name not in _indexes:
        _indexes[name] = TILLIndex.build(get_graph(name))
    return _indexes[name]


@pytest.fixture(scope="session")
def span_workloads():
    """Section VI-A workloads, resolved to internal ids, per dataset."""
    out = {}
    for name in LADDER:
        graph = get_graph(name)
        workload = make_span_workload(
            graph, num_pairs=100, intervals_per_pair=10, seed=0
        )
        out[name] = [
            (graph.index_of(q.u), graph.index_of(q.v), q.interval)
            for q in workload
        ]
    return out


@pytest.fixture(scope="session")
def theta_workloads():
    """Section VI-C workloads at each θ fraction, per representative dataset."""
    out = {}
    for name in REPRESENTATIVE:
        graph = get_graph(name)
        per_fraction = {}
        for fraction in (0.1, 0.5, 0.9):
            workload = make_theta_workload(
                graph, fraction, num_pairs=50, intervals_per_pair=5, seed=0
            )
            per_fraction[fraction] = [
                (graph.index_of(q.u), graph.index_of(q.v), q.interval, q.theta)
                for q in workload
            ]
        out[name] = per_fraction
    return out
