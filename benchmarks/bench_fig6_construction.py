"""Figure 6 — index construction time, TILL-Construct vs TILL-Construct*.

Builds are expensive, so each is timed as a single pedantic round.  The
basic Algorithm 2 builder only runs on the two smallest datasets
(everything larger is DNF within any sane benchmark budget — mirroring
the paper, where TILL-Construct misses bars on large datasets); the
optimized builder runs across the dataset ladder.
"""

import pytest

from repro import TILLIndex

from benchmarks.conftest import BASIC_SAFE, LADDER, get_graph


@pytest.mark.parametrize("dataset", LADDER)
def test_till_construct_star(benchmark, dataset):
    graph = get_graph(dataset)

    def build():
        return TILLIndex.build(graph, method="optimized")

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["entries"] = index.labels.total_entries()


@pytest.mark.parametrize("dataset", BASIC_SAFE)
def test_till_construct_basic(benchmark, dataset):
    graph = get_graph(dataset)

    def build():
        return TILLIndex.build(graph, method="basic")

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["entries"] = index.labels.total_entries()
    benchmark.extra_info["note"] = (
        "datasets beyond the two smallest are DNF for the basic builder"
    )
