"""Figure 4 — span-reachability query time, Online-Reach vs Span-Reach.

One benchmark per (dataset, algorithm): the full 1000-query Section
VI-A batch.  The paper's shape: Span-Reach at least two orders of
magnitude faster than Online-Reach on large datasets (the ratio grows
with graph size; at our scaled-down sizes expect one to two orders).
"""

import pytest

from repro.core.online import online_span_reachable
from repro.core.queries import span_reachable

from benchmarks.conftest import LADDER, get_graph, get_index


@pytest.mark.parametrize("dataset", LADDER)
def test_online_reach(benchmark, dataset, span_workloads):
    graph = get_graph(dataset)
    queries = span_workloads[dataset]

    def run():
        hits = 0
        for ui, vi, window in queries:
            if online_span_reachable(graph, ui, vi, window):
                hits += 1
        return hits

    hits = benchmark(run)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["positive"] = hits


@pytest.mark.parametrize("dataset", LADDER)
def test_span_reach(benchmark, dataset, span_workloads):
    graph = get_graph(dataset)
    index = get_index(dataset)
    rank, labels = index.order.rank, index.labels
    queries = span_workloads[dataset]

    def run():
        hits = 0
        for ui, vi, window in queries:
            if span_reachable(graph, labels, rank, ui, vi, window):
                hits += 1
        return hits

    hits = benchmark(run)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["positive"] = hits


@pytest.mark.parametrize("dataset", LADDER)
def test_answers_agree(dataset, span_workloads):
    """Not a timing: the two algorithms must return identical answers
    on the benchmark workload (guards the comparison's validity)."""
    graph = get_graph(dataset)
    index = get_index(dataset)
    rank, labels = index.order.rank, index.labels
    for ui, vi, window in span_workloads[dataset][:200]:
        assert online_span_reachable(graph, ui, vi, window) == \
            span_reachable(graph, labels, rank, ui, vi, window)
