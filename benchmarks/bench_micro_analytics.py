"""Micro-benchmarks of the analytics extensions.

Covers the features layered on top of the paper's core: minimal-window
enumeration, witness-path extraction, certificates, connectivity
components, and index anatomy — so their costs stay visible relative
to the plain boolean query.
"""

import random

import pytest

from repro.core.explain import span_certificate
from repro.core.intervals import Interval
from repro.core.label_stats import index_anatomy
from repro.core.windows import minimal_windows
from repro.graph.components import (
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.paths import span_path

from benchmarks.conftest import get_graph, get_index

DATASET = "enron"


def _pairs(graph, count, seed=0):
    rng = random.Random(seed)
    labels = list(graph.vertices())
    return [tuple(rng.sample(labels, 2)) for _ in range(count)]


def test_minimal_windows(benchmark):
    graph = get_graph(DATASET)
    index = get_index(DATASET)
    pairs = _pairs(graph, 100)

    def run():
        total = 0
        for u, v in pairs:
            total += len(minimal_windows(index, u, v))
        return total

    total = benchmark(run)
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["windows_found"] = total


def test_witness_paths(benchmark):
    graph = get_graph(DATASET)
    pairs = _pairs(graph, 30, seed=1)
    window = (graph.min_time, graph.max_time)

    def run():
        found = 0
        for u, v in pairs:
            if span_path(graph, u, v, window) is not None:
                found += 1
        return found

    found = benchmark(run)
    benchmark.extra_info["paths_found"] = found


def test_certificates(benchmark):
    graph = get_graph(DATASET)
    index = get_index(DATASET)
    pairs = _pairs(graph, 200, seed=2)
    window = Interval(graph.min_time, graph.max_time)
    rank, order = index.order.rank, index.order.order

    def run():
        positive = 0
        for u, v in pairs:
            cert = span_certificate(
                graph, index.labels, rank, order,
                graph.index_of(u), graph.index_of(v), window,
            )
            positive += int(cert.reachable)
        return positive

    benchmark(run)


def test_weak_components(benchmark):
    graph = get_graph(DATASET)
    mid = (graph.min_time + graph.max_time) // 2
    window = (graph.min_time, mid)

    def run():
        return len(weakly_connected_components(graph, window))

    count = benchmark(run)
    benchmark.extra_info["components"] = count


def test_strong_components(benchmark):
    graph = get_graph(DATASET)
    mid = (graph.min_time + graph.max_time) // 2
    window = (graph.min_time, mid)

    def run():
        return len(strongly_connected_components(graph, window))

    count = benchmark(run)
    benchmark.extra_info["components"] = count


def test_index_anatomy(benchmark):
    index = get_index(DATASET)

    def run():
        return index_anatomy(index).total_entries

    benchmark(run)
