"""Figure 5 — index size vs dataset size.

The timed body is the size computation itself (cheap); the artefact is
the ``extra_info`` of every run: graph bytes, index bytes, entry count
and their ratio, which should stay O(1) across the corpus and dip
below ~3 on the larger graphs (the paper reports index < graph on
Flickr).
"""

import pytest

from repro.experiments.harness import graph_size_bytes

from benchmarks.conftest import LADDER, get_graph, get_index


@pytest.mark.parametrize("dataset", LADDER)
def test_index_size(benchmark, dataset):
    graph = get_graph(dataset)
    index = get_index(dataset)

    def measure():
        return index.labels.estimated_bytes()

    index_bytes = benchmark(measure)
    gbytes = graph_size_bytes(graph)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["graph_bytes"] = gbytes
    benchmark.extra_info["index_bytes"] = index_bytes
    benchmark.extra_info["entries"] = index.labels.total_entries()
    benchmark.extra_info["ratio"] = round(index_bytes / gbytes, 3)
