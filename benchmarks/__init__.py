"""Benchmark suite regenerating every table and figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Module ↔ artefact
mapping lives in DESIGN.md's per-experiment index.
"""
