"""Money-transaction monitoring — the paper's motivating application.

Section I (Applications): *"an account in the transaction path may
transfer the money to the next account in advance and receive the money
from the prior account later.  The existing order-dependent reachability
model cannot capture this activity, but our model can."*

This example builds a synthetic payment network, plants a laundering
chain whose hops are deliberately **out of time order** (each mule
forwards funds before receiving them), and shows that

* the classic time-respecting model misses the chain entirely, while
* span-reachability flags it, and
* θ-reachability narrows the alert to chains completed within a short
  laundering window, suppressing slow legitimate flows.

Run with ``python examples/transaction_monitoring.py``.
"""

import random

from repro import TemporalGraph, TILLIndex
from repro.models import time_respecting_reachable


def build_payment_network(seed: int = 7) -> TemporalGraph:
    """A background of legitimate payments plus one laundering chain."""
    rng = random.Random(seed)
    graph = TemporalGraph(directed=True)

    # Background: 300 accounts exchanging ordinary payments over 90 days.
    accounts = [f"acct{i:03d}" for i in range(300)]
    for _ in range(1500):
        payer, payee = rng.sample(accounts, 2)
        graph.add_edge(payer, payee, rng.randint(1, 90))

    # The laundering chain: source -> m1 -> m2 -> m3 -> sink, executed
    # within days 40-44 but with shuffled hop order: each mule forwards
    # borrowed funds *before* receiving from upstream.
    chain = ["source", "mule1", "mule2", "mule3", "sink"]
    hop_days = [43, 41, 44, 40]  # deliberately non-monotone
    for (payer, payee), day in zip(zip(chain, chain[1:]), hop_days):
        graph.add_edge(payer, payee, day)

    # A slow legitimate flow between the same endpoints months apart:
    # source -> broker (day 5) -> sink (day 85).  It must NOT trigger a
    # short-window alert.
    graph.add_edge("source", "broker", 5)
    graph.add_edge("broker", "sink", 85)

    return graph.freeze()


def main() -> None:
    graph = build_payment_network()
    index = TILLIndex.build(graph)
    monitoring_window = (1, 90)

    print("=== transaction monitoring over days 1-90 ===")
    print(f"network: {graph}")

    # 1. Time-respecting search misses the shuffled chain.
    journey = time_respecting_reachable(
        graph, "source", "sink", (40, 44)
    )
    print(f"time-respecting path source->sink within days 40-44? {journey}")

    # 2. Span-reachability sees it: the projected graph of [40, 44]
    #    contains the whole chain regardless of hop order.
    span = index.span_reachable("source", "sink", (40, 44))
    print(f"span-reachable source->sink within days 40-44?      {span}")

    # 3. Theta-reachability as an alerting rule: flag endpoint pairs
    #    connected within any 5-day window of the whole quarter.
    fast = index.theta_reachable("source", "sink", monitoring_window, theta=5)
    print(f"connected within SOME 5-day window of the quarter?  {fast}")

    # 4. The slow broker route alone does not satisfy the 5-day rule --
    #    remove the chain and re-check.
    clean = TemporalGraph(directed=True)
    for u, v, t in graph.edges():
        if "mule" not in u and "mule" not in v:
            clean.add_edge(u, v, t)
    clean_index = TILLIndex.build(clean.freeze())
    slow_only = clean_index.theta_reachable(
        "source", "sink", monitoring_window, theta=5
    )
    print(f"...and with the mule chain removed?                 {slow_only}")

    assert span and fast and not journey and not slow_only
    print("alerting rule isolates exactly the laundering chain.")


if __name__ == "__main__":
    main()
