"""Event cohorts in a social network — the paper's security/recommendation
application.

Section I: *"in social networks, our model can be used to detect
whether two users are involved in a social group in the time period of
some big events, such as FIFA World Cup and Olympic Games."*

We simulate a messaging network over a year that contains two bursts of
event-driven chatter (a 3-week "world cup" and a 2-week "olympics").
Using span-reachability restricted to each event window we extract the
*cohort* of a seed user — everyone transitively connected to them
during the event — and show that cohorts differ per event and differ
from year-round connectivity.

Run with ``python examples/event_cohorts.py``.
"""

import random
from typing import List, Set

from repro import TemporalGraph, TILLIndex
from repro.graph.projection import reachable_set

DAYS = 365
WORLD_CUP = (160, 180)  # a 3-week event window
OLYMPICS = (300, 313)   # a 2-week event window


def build_network(seed: int = 3) -> TemporalGraph:
    rng = random.Random(seed)
    graph = TemporalGraph(directed=False)
    users = [f"user{i:03d}" for i in range(250)]

    # Year-round background chatter between random pairs.
    for _ in range(900):
        u, v = rng.sample(users, 2)
        graph.add_edge(u, v, rng.randint(1, DAYS))

    # Event 1: a dense fan community (users 0-59) lights up during the
    # world cup window, all of it bridged through a few superfans.
    fans = users[:60]
    for _ in range(700):
        u, v = rng.sample(fans, 2)
        graph.add_edge(u, v, rng.randint(*WORLD_CUP))

    # Event 2: a different, partially overlapping community (users
    # 40-99) chatters during the olympics.
    athletes = users[40:100]
    for _ in range(500):
        u, v = rng.sample(athletes, 2)
        graph.add_edge(u, v, rng.randint(*OLYMPICS))

    return graph.freeze()


def cohort(index: TILLIndex, seed_user: str, window) -> Set[str]:
    """Everyone span-connected to *seed_user* within *window*.

    Demonstrates point-queries against the index; for a full closure
    the brute-force helper is equivalent (and used to cross-check).
    """
    members = {
        other
        for other in index.graph.vertices()
        if other != seed_user and index.span_reachable(seed_user, other, window)
    }
    # Cross-check against explicit projection + BFS.
    oracle = reachable_set(index.graph, seed_user, window) - {seed_user}
    assert members == oracle, "index disagrees with projection oracle"
    return members


def main() -> None:
    graph = build_network()
    index = TILLIndex.build(graph)
    seed_user = "user050"  # a member of both event communities

    wc = cohort(index, seed_user, WORLD_CUP)
    oly = cohort(index, seed_user, OLYMPICS)
    quiet = cohort(index, seed_user, (20, 40))  # an uneventful window

    print(f"network: {graph}")
    print(f"{seed_user}'s world-cup cohort : {len(wc)} users")
    print(f"{seed_user}'s olympics cohort  : {len(oly)} users")
    print(f"{seed_user}'s quiet-3-weeks cohort: {len(quiet)} users")
    print(f"cohort overlap (both events)   : {len(wc & oly)} users")

    # The event cohorts should dwarf the quiet-window cohort.
    assert len(wc) > len(quiet) and len(oly) > len(quiet)
    print("event windows produce far larger cohorts than quiet windows,")
    print("which is exactly the signal the paper's application needs.")


if __name__ == "__main__":
    main()
