"""Forensic analysis: *when* and *how* were two accounts connected?

The boolean span-reachability query answers "were they connected in
this window".  An investigator working the other direction — given two
suspect accounts, reconstruct their relationship — needs three more
primitives this library provides on top of the index:

* ``minimal_windows``  — every containment-minimal window in which the
  pair is connected (the complete temporal fingerprint of the link);
* ``tightest_window``  — the fastest the money ever moved end to end;
* ``explain`` + ``witness_path`` — the hub certificate and an explicit
  chain of transfers for any window of interest.

Run with ``python examples/forensic_windows.py``.
"""

import random

from repro import TemporalGraph, TILLIndex
from repro.core.windows import minimal_windows, tightest_window
from repro.graph.paths import path_is_valid_witness


def build_ledger(seed: int = 5) -> TemporalGraph:
    """A payment ledger with two planted connections between the same
    suspects: a slow three-month route and a fast five-day mule chain."""
    rng = random.Random(seed)
    graph = TemporalGraph(directed=True)
    accounts = [f"acct{i:03d}" for i in range(200)]
    for _ in range(1200):
        payer, payee = rng.sample(accounts, 2)
        graph.add_edge(payer, payee, rng.randint(1, 365))

    # Slow legitimate route: suspectA -> holding -> suspectB over ~90 days.
    graph.add_edge("suspectA", "holding", 100)
    graph.add_edge("holding", "suspectB", 190)

    # Fast mule chain inside days 240-244 (out of time order, as usual).
    chain = ["suspectA", "m1", "m2", "suspectB"]
    for (payer, payee), day in zip(zip(chain, chain[1:]), (243, 240, 244)):
        graph.add_edge(payer, payee, day)

    return graph.freeze()


def main() -> None:
    graph = build_ledger()
    index = TILLIndex.build(graph)
    pair = ("suspectA", "suspectB")
    print(f"ledger: {graph}")

    # 1. The complete temporal fingerprint of the relationship.
    windows = minimal_windows(index, *pair)
    print(f"\nminimal connection windows for {pair[0]} -> {pair[1]}:")
    for window in windows:
        print(f"  {window}  (length {window.length} days)")

    # 2. The fastest end-to-end connection ever.
    fastest = tightest_window(index, *pair)
    print(f"\ntightest window: {fastest} ({fastest.length} days)")
    assert fastest.length <= 5, "the mule chain should be the tightest link"

    # 3. Evidence for that window: certificate + explicit chain.
    cert = index.explain(*pair, fastest)
    print(f"certificate: kind={cert['kind']}, hub={cert['hub']}")
    chain = index.witness_path(*pair, fastest)
    print("witness chain:")
    for payer, payee, day in chain:
        print(f"  day {day:>3}: {payer} -> {payee}")
    assert path_is_valid_witness(graph, *pair, fastest, chain)

    # 4. Sanity: every reported window is truly minimal -- shrinking it
    #    from either side disconnects the pair.
    for window in windows:
        if window.length > 1:
            assert not index.span_reachable(
                *pair, (window.start + 1, window.end)
            )
            assert not index.span_reachable(
                *pair, (window.start, window.end - 1)
            )
    print("\nall reported windows verified minimal.")


if __name__ == "__main__":
    main()
