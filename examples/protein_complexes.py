"""Protein interaction analysis — the paper's biology application.

Section I: *"In monitoring the protein activities in a specific period,
two proteins belonging to the same biological organization may not have
direct time-respecting paths, but are controlled by or interacted with
a common protein.  Our model can be used to identify the relationship
between these proteins."*

We simulate a PPI-style interaction log: proteins interact when both
are expressed, and a biological process activates a *complex* of
proteins within an assembly window.  Two member proteins of the complex
never interact directly and have no time-respecting path (their
interactions with the scaffold protein happen in the "wrong" order),
yet span-reachability over the assembly window links them through the
scaffold — and a ϑ-capped index answers all such window queries while
staying small.

Run with ``python examples/protein_complexes.py``.
"""

import random

from repro import TemporalGraph, TILLIndex
from repro.models import time_respecting_reachable


def build_interaction_log(seed: int = 11) -> TemporalGraph:
    rng = random.Random(seed)
    graph = TemporalGraph(directed=False)
    proteins = [f"P{i:04d}" for i in range(400)]

    # Background interactome over 200 time units.
    for _ in range(2000):
        a, b = rng.sample(proteins, 2)
        graph.add_edge(a, b, rng.randint(1, 200))

    # A complex assembling in window [100, 106]: the scaffold protein
    # SCAF recruits members A and B.  B binds *before* A does, so the
    # path A - SCAF - B is not time-respecting.
    graph.add_edge("A", "SCAF", 105)
    graph.add_edge("SCAF", "B", 101)
    # More members join the assembly at various offsets.
    for i, t in enumerate((100, 102, 103, 104, 106)):
        graph.add_edge("SCAF", f"member{i}", t)

    return graph.freeze()


def main() -> None:
    graph = build_interaction_log()
    window = (100, 106)

    # Complex-assembly analyses only ever look at short windows, so a
    # vartheta cap keeps the index lean (paper Section IV-C / Fig. 7).
    cap = 10
    index = TILLIndex.build(graph, vartheta=cap)
    full_index = TILLIndex.build(graph)
    print(f"interactome: {graph}")
    print(
        f"index entries with vartheta={cap}: "
        f"{index.labels.total_entries()} "
        f"(unbounded: {full_index.labels.total_entries()})"
    )

    # Undirected journeys: is there an interaction path A..B whose times
    # are non-decreasing inside the window?
    journey = time_respecting_reachable(graph, "A", "B", window)
    print(f"time-respecting A..B within assembly window? {journey}")

    span = index.span_reachable("A", "B", window)
    print(f"span-reachable A..B within assembly window?  {span}")

    members = [f"member{i}" for i in range(5)]
    linked = [m for m in members if index.span_reachable("A", m, window)]
    print(f"complex members linked to A in the window: {linked}")

    assert span and not journey and len(linked) == len(members)
    print("span-reachability recovers the full complex; the journey "
          "model misses it.")


if __name__ == "__main__":
    main()
