"""Streaming edge arrivals — the paper's future-work extension.

The conclusion notes: *"the edges in temporal graphs often come in
streaming.  An incremental algorithm is required for index
construction."*  :class:`repro.core.incremental.IncrementalTILLIndex`
implements the delta-buffer design described in DESIGN.md; this example
replays a day of synthetic message traffic edge-by-edge, interleaving
queries with arrivals, and verifies every answer against a freshly
built index.

Run with ``python examples/streaming_updates.py``.
"""

import random
import time

from repro import TemporalGraph, TILLIndex
from repro.core.incremental import IncrementalTILLIndex


def main() -> None:
    rng = random.Random(21)
    users = [f"u{i:02d}" for i in range(60)]

    # Bootstrap: an index over the first 500 historical messages.
    history = [
        (*rng.sample(users, 2), rng.randint(1, 300)) for _ in range(500)
    ]
    base = TemporalGraph.from_edges(history, directed=True)
    stream = IncrementalTILLIndex(base, rebuild_threshold=64)
    print(f"bootstrapped over {base.num_edges} edges")

    # Replay 300 live messages; every 25 arrivals, answer a query and
    # cross-check against a from-scratch index.
    live = [
        (*rng.sample(users, 2), rng.randint(301, 400)) for _ in range(300)
    ]
    mirror_edges = list(history)
    checks = 0
    t0 = time.perf_counter()
    for i, (u, v, t) in enumerate(live, 1):
        stream.add_edge(u, v, t)
        mirror_edges.append((u, v, t))
        if i % 25 == 0:
            qu, qv = rng.sample(users, 2)
            lo = rng.randint(250, 380)
            window = (lo, lo + rng.randint(5, 40))
            got = stream.span_reachable(qu, qv, window)
            mirror = TILLIndex.build(
                TemporalGraph.from_edges(mirror_edges, directed=True)
            )
            want = mirror.span_reachable(qu, qv, window)
            assert got == want, (qu, qv, window, got, want)
            checks += 1
    elapsed = time.perf_counter() - t0

    print(f"replayed {len(live)} edges with {checks} interleaved queries "
          f"in {elapsed:.2f}s")
    print(f"delta buffer: {stream.delta_size} edges pending, "
          f"{stream.rebuilds} amortized rebuilds")
    print("all streaming answers matched a from-scratch index.")


if __name__ == "__main__":
    main()
