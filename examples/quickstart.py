"""Quickstart: build a TILL-Index and answer reachability queries.

Walks through the library's core workflow on the paper's running
example (Fig. 1):

1. assemble a temporal graph,
2. build the TILL-Index,
3. answer span-reachability queries (Definition 1),
4. answer θ-reachability queries (Definition 2),
5. compare with the index-free online baseline (Algorithm 1),
6. persist and reload the index.

Run with ``python examples/quickstart.py``.
"""

import tempfile
from pathlib import Path

from repro import TemporalGraph, TILLIndex, online_span_reachable
from repro.datasets import paper_example_graph


def main() -> None:
    # 1. A temporal graph: edges are (source, target, integer timestamp).
    #    Here we use the paper's 12-vertex running example; any iterable
    #    of (u, v, t) triplets works the same way:
    #
    #    graph = TemporalGraph.from_edges([("a", "b", 3), ("b", "c", 5)])
    graph = paper_example_graph()
    print(f"graph: {graph}")

    # 2. Build the index.  Options worth knowing:
    #      vartheta=...  largest query window the index must support
    #      method="basic"  the paper's unoptimized Algorithm 2
    #      ordering=...    vertex-order strategy (default degree-product)
    index = TILLIndex.build(graph)
    stats = index.stats()
    print(
        f"index: {stats.total_entries} label entries, "
        f"built in {stats.build_seconds * 1e3:.2f} ms"
    )

    # 3. Span-reachability (Example 1 of the paper): v1 reaches v8 in
    #    the projected graph of [3, 5] via v5.
    print("v1 ~[3,5]~> v8 :", index.span_reachable("v1", "v8", (3, 5)))
    print("v1 ~[6,8]~> v8 :", index.span_reachable("v1", "v8", (6, 8)))

    # 4. Theta-reachability (Example 2): v1 3-reaches v12 in [1, 5]
    #    because the 3-length subinterval [3, 5] already connects them.
    print("v1 3-reaches v12 in [1,5]:",
          index.theta_reachable("v1", "v12", (1, 5), theta=3))
    print("v1 2-reaches v12 in [1,5]:",
          index.theta_reachable("v1", "v12", (1, 5), theta=2))

    # 5. The online baseline answers the same questions without any
    #    index -- handy for one-off queries on huge graphs.
    print("online v1 ~[3,5]~> v8 :",
          online_span_reachable(graph, "v1", "v8", (3, 5)))

    # 6. Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "example.till"
        index.save(path)
        reloaded = TILLIndex.load(path, graph)
        print("reloaded index agrees:",
              reloaded.span_reachable("v1", "v8", (3, 5)))


if __name__ == "__main__":
    main()
