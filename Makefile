# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench experiments examples verify clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro experiment table2
	$(PYTHON) -m repro experiment fig4
	$(PYTHON) -m repro experiment fig5
	$(PYTHON) -m repro experiment fig6
	$(PYTHON) -m repro experiment fig7
	$(PYTHON) -m repro experiment fig8
	$(PYTHON) -m repro experiment fig9

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

verify:
	$(PYTHON) -m repro verify chess --samples 1000
	$(PYTHON) -m repro verify enron --samples 500

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
