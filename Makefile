# Convenience targets for the repro library.

PYTHON ?= python
# Make every target work from a plain checkout (no install needed).
export PYTHONPATH := src
# Scratch directory for smoke-stage artifacts (metrics snapshots,
# traces, throwaway indexes) — never committed, wiped by `make clean`.
SCRATCH := .scratch

.PHONY: install test bench bench-smoke experiments examples verify fuzz-smoke fuzz shard-smoke flat-smoke native-smoke obs-smoke serve-smoke clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# Tier-1 suite plus the deterministic smoke stages in one command.
test:
	$(PYTHON) -m pytest tests/
	$(MAKE) fuzz-smoke
	$(MAKE) shard-smoke
	$(MAKE) flat-smoke
	$(MAKE) native-smoke
	$(MAKE) obs-smoke
	$(MAKE) serve-smoke
	$(MAKE) bench-smoke

# Fixed-seed differential fuzzing smoke stage (<30 s): every answer
# path cross-checked on directed, undirected, and vartheta-capped
# random graphs.  Deterministic — safe for CI.
fuzz-smoke:
	$(PYTHON) -m repro fuzz --profile small --seeds 20
	$(PYTHON) -m repro fuzz --profile theta --seeds 6
	$(PYTHON) -m repro fuzz --profile wide --seeds 3

# Longer randomized campaign for local soak testing.
fuzz:
	$(PYTHON) -m repro fuzz --profile small --seeds 200
	$(PYTHON) -m repro fuzz --profile theta --seeds 60
	$(PYTHON) -m repro fuzz --profile wide --seeds 25

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sharded-index smoke stage (<60 s): sharded-vs-monolithic differential
# fuzzing across every routing path (contained / stitch / fallback,
# scalar and batch) plus one parallel (jobs=2) shard build.
# Deterministic — safe for CI.
shard-smoke:
	$(PYTHON) -m repro fuzz --profile sharded --seeds 12
	$(PYTHON) -m repro shard-build chess --shards 4 --jobs 2

# Flat-store smoke stage (<60 s): flat kernels differentially checked
# against the object path and the brute-force oracle (including a
# format-3 save -> mmap-load round trip per odd seed, and the numpy
# batch kernels whenever numpy is importable), then one real format-3
# save / zero-copy mmap load / verify cycle on a dataset, queried once
# per batch-kernel backend (auto selects numpy when present and falls
# back to python silently, so this passes on a no-numpy host too).
# Deterministic — safe for CI.
flat-smoke:
	mkdir -p $(SCRATCH)
	$(PYTHON) -m repro build chess -o $(SCRATCH)/flat_smoke.till --format 3
	$(PYTHON) -m repro fuzz --profile flat --seeds 12
	$(PYTHON) -m repro verify chess --index $(SCRATCH)/flat_smoke.till \
		--mmap --samples 300
	$(PYTHON) -m repro query chess 5 40 0 900 \
		--index $(SCRATCH)/flat_smoke.till --mmap --flat-backend python
	$(PYTHON) -m repro query chess 5 40 0 900 \
		--index $(SCRATCH)/flat_smoke.till --mmap --flat-backend auto
	rm -f $(SCRATCH)/flat_smoke.till

# Native-kernel + parallel-execution smoke stage (<60 s): the
# dedicated parallel-kernels test file (executor partition/splice,
# determinism across thread widths and backends, the uncompiled
# native kernel bodies, the batcher's θ-agnostic span keys), one
# mmap'd query with --kernel-threads 2, and a short flat fuzz
# campaign whose native leg runs the kernel bodies uncompiled when
# numba is absent and JIT'd when it is present — the target is green
# on both kinds of host.  Deterministic — safe for CI.
native-smoke:
	mkdir -p $(SCRATCH)
	$(PYTHON) -m pytest tests/test_parallel_kernels.py -q
	$(PYTHON) -m repro build chess -o $(SCRATCH)/native_smoke.till --format 3
	$(PYTHON) -m repro query chess 5 40 0 900 \
		--index $(SCRATCH)/native_smoke.till --mmap \
		--flat-backend auto --kernel-threads 2
	$(PYTHON) -m repro fuzz --profile flat --seeds 6
	rm -f $(SCRATCH)/native_smoke.till

# Telemetry smoke stage (<60 s): build + query a small graph with
# metrics/trace export through every surfaced flag, then validate the
# documents against the repro-metrics/1 and repro-trace/1 schemas.
# Artifacts land in $(SCRATCH)/, not the repo root.
# Deterministic — safe for CI.
obs-smoke:
	mkdir -p $(SCRATCH)
	$(PYTHON) -m repro build chess --progress \
		--metrics-out $(SCRATCH)/obs_build_metrics.json \
		--trace-out $(SCRATCH)/obs_build_trace.jsonl
	$(PYTHON) -m repro query chess 5 40 0 900 \
		--metrics-out $(SCRATCH)/obs_query_metrics.json \
		--trace-out $(SCRATCH)/obs_query_trace.jsonl
	$(PYTHON) -m repro stats chess --shards 3 --queries 200 \
		--format prometheus \
		--metrics-out $(SCRATCH)/obs_stats_metrics.json \
		--trace-out $(SCRATCH)/obs_stats_trace.jsonl > /dev/null
	$(PYTHON) -m repro.obs.validate \
		$(SCRATCH)/obs_build_metrics.json \
		$(SCRATCH)/obs_build_trace.jsonl \
		$(SCRATCH)/obs_query_metrics.json \
		$(SCRATCH)/obs_query_trace.jsonl \
		$(SCRATCH)/obs_stats_metrics.json \
		$(SCRATCH)/obs_stats_trace.jsonl

# Network-serving smoke stage (<60 s): builds a format-3 index, boots
# a pre-fork server pool on a scratch Unix socket (every worker mmaps
# the same file) with fleet observability on, drives a few hundred
# pipelined span/theta queries through the load generator (the second
# wave fully traced), hot-swaps the index mid-traffic (reload op +
# SIGHUP), asserts the `metrics` wire op aggregates every worker's
# counters to the exact client-side total and zero failed queries,
# then validates the merged fleet artifacts (metrics document +
# cross-process trace) and judges the aggregated latency against the
# recorded bench baseline (wide 900% budget: this is a format/plumbing
# check on a shared CI box, not a perf judgement).
# Deterministic — safe for CI.
serve-smoke:
	mkdir -p $(SCRATCH)
	$(PYTHON) -m repro.serve.smoke --workers 2 --queries 400 \
		--fleet-metrics-out $(SCRATCH)/serve_fleet_metrics.json \
		--fleet-trace-out $(SCRATCH)/serve_fleet_trace.jsonl
	$(PYTHON) -m repro.obs.validate \
		$(SCRATCH)/serve_fleet_metrics.json \
		$(SCRATCH)/serve_fleet_trace.jsonl
	$(PYTHON) -m repro slo \
		--metrics $(SCRATCH)/serve_fleet_metrics.json \
		--baseline BENCH_PR8.json --max-burn 900

# Seeded perf baseline (<90 s): build time, label size, scalar vs
# batch vs cached query throughput, per-scenario latency percentiles,
# the online fallback, the monolithic-vs-sharded build/query
# comparison, the telemetry-overhead scenario, the flat-vs-object
# (python vs numpy batch kernel) + cold-open scenario, the
# parallel-kernel scenario (chunked batch execution vs the sequential
# engine across a thread sweep, against the python/numpy references),
# and the network serving scenario (concurrent QPS + p50/p95/p99 vs
# worker count vs the in-process engine ceiling, with a hot swap under
# load, plus a fleet-observability rerun recording its overhead and
# SLO estimates).
# Writes BENCH_PR10.json and gates against the recorded PR 9 baseline;
# tune the gate with e.g.
#   python -m repro bench --smoke --compare BENCH_PR9.json --max-regression 15
bench-smoke:
	$(PYTHON) -m repro bench --smoke -o BENCH_PR10.json \
		--compare BENCH_PR9.json --max-regression 15 --repeats 6

experiments:
	$(PYTHON) -m repro experiment table2
	$(PYTHON) -m repro experiment fig4
	$(PYTHON) -m repro experiment fig5
	$(PYTHON) -m repro experiment fig6
	$(PYTHON) -m repro experiment fig7
	$(PYTHON) -m repro experiment fig8
	$(PYTHON) -m repro experiment fig9

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

verify:
	$(PYTHON) -m repro verify chess --samples 1000
	$(PYTHON) -m repro verify enron --samples 500

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis $(SCRATCH)
	rm -f obs_*_metrics.json obs_*_trace.jsonl flat_smoke.till
	find . -name __pycache__ -type d -exec rm -rf {} +
