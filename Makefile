# Convenience targets for the repro library.

PYTHON ?= python
# Make every target work from a plain checkout (no install needed).
export PYTHONPATH := src

.PHONY: install test bench bench-smoke experiments examples verify fuzz-smoke fuzz shard-smoke clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# Tier-1 suite plus the deterministic smoke stages in one command.
test:
	$(PYTHON) -m pytest tests/
	$(MAKE) fuzz-smoke
	$(MAKE) shard-smoke
	$(MAKE) bench-smoke

# Fixed-seed differential fuzzing smoke stage (<30 s): every answer
# path cross-checked on directed, undirected, and vartheta-capped
# random graphs.  Deterministic — safe for CI.
fuzz-smoke:
	$(PYTHON) -m repro fuzz --profile small --seeds 20
	$(PYTHON) -m repro fuzz --profile theta --seeds 6
	$(PYTHON) -m repro fuzz --profile wide --seeds 3

# Longer randomized campaign for local soak testing.
fuzz:
	$(PYTHON) -m repro fuzz --profile small --seeds 200
	$(PYTHON) -m repro fuzz --profile theta --seeds 60
	$(PYTHON) -m repro fuzz --profile wide --seeds 25

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sharded-index smoke stage (<60 s): sharded-vs-monolithic differential
# fuzzing across every routing path (contained / stitch / fallback,
# scalar and batch) plus one parallel (jobs=2) shard build.
# Deterministic — safe for CI.
shard-smoke:
	$(PYTHON) -m repro fuzz --profile sharded --seeds 12
	$(PYTHON) -m repro shard-build chess --shards 4 --jobs 2

# Seeded perf baseline (<60 s): build time, label size, scalar vs
# batch vs cached query throughput, online fallback, and the
# monolithic-vs-sharded build/query comparison.  Writes
# BENCH_PR3.json; gate a change against a recorded baseline with
#   python -m repro bench --smoke --compare BENCH_PR3.json --max-regression 15
bench-smoke:
	$(PYTHON) -m repro bench --smoke -o BENCH_PR3.json

experiments:
	$(PYTHON) -m repro experiment table2
	$(PYTHON) -m repro experiment fig4
	$(PYTHON) -m repro experiment fig5
	$(PYTHON) -m repro experiment fig6
	$(PYTHON) -m repro experiment fig7
	$(PYTHON) -m repro experiment fig8
	$(PYTHON) -m repro experiment fig9

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

verify:
	$(PYTHON) -m repro verify chess --samples 1000
	$(PYTHON) -m repro verify enron --samples 500

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
