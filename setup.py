"""Legacy shim so `pip install -e .` works on environments whose
setuptools predates built-in bdist_wheel (no `wheel` package offline).
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
